#include "bib/bib.hpp"

#include <algorithm>
#include <cmath>

#include "rng/dist.hpp"
#include "rng/xoshiro.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace clb::bib {

namespace {

std::uint64_t max_of(const std::vector<std::uint64_t>& v) {
  std::uint64_t mx = 0;
  for (const auto x : v) mx = std::max(mx, x);
  return mx;
}

}  // namespace

BibResult single_choice(std::uint64_t m, std::uint64_t n, std::uint64_t seed) {
  CLB_CHECK(n >= 1, "need at least one bin");
  rng::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> load(n, 0);
  for (std::uint64_t i = 0; i < m; ++i) {
    ++load[rng::bounded(rng, n)];
  }
  return BibResult{max_of(load), m, 1, 0};
}

BibResult greedy_d(std::uint64_t m, std::uint64_t n, std::uint32_t d,
                   std::uint64_t seed) {
  CLB_CHECK(n >= d && d >= 1, "need n >= d >= 1 bins");
  rng::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> load(n, 0);
  std::uint64_t messages = 0;
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t best = rng::bounded(rng, n);
    messages += d;  // probes
    for (std::uint32_t j = 1; j < d; ++j) {
      const std::uint64_t cand = rng::bounded(rng, n);
      if (load[cand] < load[best]) best = cand;
    }
    ++load[best];
    ++messages;  // placement
  }
  return BibResult{max_of(load), messages, 1, 0};
}

BibResult weighted_greedy_d(const std::vector<double>& weights,
                            std::uint64_t n, std::uint32_t d,
                            std::uint64_t seed) {
  CLB_CHECK(n >= d && d >= 1, "need n >= d >= 1 bins");
  rng::Xoshiro256 rng(seed);
  std::vector<double> load(n, 0.0);
  std::uint64_t messages = 0;
  for (const double w : weights) {
    CLB_CHECK(w >= 0.0, "ball weights must be non-negative");
    std::uint64_t best = rng::bounded(rng, n);
    messages += d;
    for (std::uint32_t j = 1; j < d; ++j) {
      const std::uint64_t cand = rng::bounded(rng, n);
      if (load[cand] < load[best]) best = cand;
    }
    load[best] += w;
    ++messages;
  }
  double mx = 0;
  for (const double x : load) mx = std::max(mx, x);
  return BibResult{static_cast<std::uint64_t>(std::ceil(mx)), messages, 1, 0};
}

BibResult acmr_parallel(std::uint64_t m, std::uint64_t n, AcmrConfig cfg,
                        std::uint64_t seed) {
  CLB_CHECK(cfg.rounds >= 1 && cfg.choices >= 1, "bad ACMR config");
  CLB_CHECK(n >= 16, "ACMR realisation needs n >= 16");
  std::uint64_t threshold = cfg.threshold;
  if (threshold == 0) {
    // T = ceil( ((2r + 1) log2 n / log2 log2 n)^{1/r} ), the paper's shape.
    const double lg = std::log2(static_cast<double>(n));
    const double base =
        (2.0 * cfg.rounds + 1.0) * lg / std::log2(lg);
    threshold = static_cast<std::uint64_t>(
        std::ceil(std::pow(base, 1.0 / cfg.rounds)));
  }
  rng::Xoshiro256 rng(seed);
  const std::uint32_t d = cfg.choices;
  std::vector<std::uint64_t> targets(m * d);
  for (std::uint64_t i = 0; i < m * d; ++i) {
    targets[i] = rng::bounded(rng, n);
  }
  std::vector<std::uint64_t> load(n, 0);
  std::vector<std::uint64_t> accepted_this_round(n, 0);
  std::vector<std::uint64_t> pending(m);
  for (std::uint64_t i = 0; i < m; ++i) pending[i] = i;
  std::uint64_t messages = 0;
  std::uint32_t rounds_used = 0;
  for (std::uint32_t r = 0; r < cfg.rounds && !pending.empty(); ++r) {
    rounds_used = r + 1;
    std::fill(accepted_this_round.begin(), accepted_this_round.end(), 0);
    std::vector<std::uint64_t> next;
    // Bins accept up to `threshold` balls per round, first-come-first-served
    // in ball order (the standard sequential tie-break realisation).
    for (const std::uint64_t ball : pending) {
      bool placed = false;
      for (std::uint32_t j = 0; j < d && !placed; ++j) {
        const std::uint64_t bin = targets[ball * d + j];
        ++messages;
        if (accepted_this_round[bin] < threshold) {
          ++accepted_this_round[bin];
          ++load[bin];
          placed = true;
        }
      }
      if (!placed) next.push_back(ball);
    }
    pending.swap(next);
  }
  return BibResult{max_of(load), messages, rounds_used,
                   static_cast<std::uint64_t>(pending.size())};
}

BibResult acmr_greedy_2round(std::uint64_t m, std::uint64_t n,
                             std::uint32_t choices, std::uint64_t seed) {
  CLB_CHECK(choices >= 2 && n >= choices, "need n >= choices >= 2");
  rng::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> targets(m * choices);
  std::vector<std::uint64_t> rank(m * choices);
  std::vector<std::uint64_t> arrivals(n, 0);
  // Round 1: announce; bins hand out arrival ranks in ball order.
  for (std::uint64_t ball = 0; ball < m; ++ball) {
    for (std::uint32_t j = 0; j < choices; ++j) {
      const std::uint64_t bin = rng::bounded(rng, n);
      targets[ball * choices + j] = bin;
      rank[ball * choices + j] = ++arrivals[bin];
    }
  }
  // Round 2: commit to the choice with the lowest rank.
  std::vector<std::uint64_t> load(n, 0);
  for (std::uint64_t ball = 0; ball < m; ++ball) {
    std::uint32_t best = 0;
    for (std::uint32_t j = 1; j < choices; ++j) {
      if (rank[ball * choices + j] < rank[ball * choices + best]) best = j;
    }
    ++load[targets[ball * choices + best]];
  }
  // Messages: announce + rank reply per choice, plus the commit.
  return BibResult{max_of(load), m * (2ULL * choices + 1), 2, 0};
}

BibResult stemann_collision(std::uint64_t m, std::uint64_t n,
                            std::uint32_t max_rounds, std::uint64_t seed) {
  CLB_CHECK(max_rounds >= 1, "need at least one round");
  rng::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> t0(m), t1(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    t0[i] = rng::bounded(rng, n);
    t1[i] = rng::bounded(rng, n);
  }
  std::vector<std::uint64_t> load(n, 0);
  std::vector<std::uint64_t> pending(m);
  for (std::uint64_t i = 0; i < m; ++i) pending[i] = i;
  std::uint64_t messages = 0;
  std::uint32_t rounds_used = 0;
  for (std::uint32_t r = 1; r <= max_rounds && !pending.empty(); ++r) {
    rounds_used = r;
    std::vector<std::uint64_t> next;
    for (const std::uint64_t ball : pending) {
      messages += 2;
      const std::uint64_t a = t0[ball];
      const std::uint64_t b = t1[ball];
      // Acceptance threshold tau_r = r; take the emptier committed bin.
      const std::uint64_t bin = load[a] <= load[b] ? a : b;
      if (load[bin] < r) {
        ++load[bin];
      } else {
        next.push_back(ball);
      }
    }
    pending.swap(next);
  }
  return BibResult{max_of(load), messages, rounds_used,
                   static_cast<std::uint64_t>(pending.size())};
}

BibResult infinite_greedy_d(std::uint64_t n, std::uint32_t d,
                            std::uint64_t steps, std::uint64_t seed) {
  CLB_CHECK(n >= d && d >= 1, "need n >= d >= 1");
  rng::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> load(n, 0);
  std::vector<std::uint32_t> home(n);  // bin of each of the n balls
  // Initial placement with greedy-d.
  std::uint64_t messages = 0;
  for (std::uint64_t ball = 0; ball < n; ++ball) {
    std::uint64_t best = rng::bounded(rng, n);
    messages += d + 1;
    for (std::uint32_t j = 1; j < d; ++j) {
      const std::uint64_t cand = rng::bounded(rng, n);
      if (load[cand] < load[best]) best = cand;
    }
    home[ball] = static_cast<std::uint32_t>(best);
    ++load[best];
  }
  // Track the running maximum in O(1) per move via a load-value histogram
  // (loads stay tiny, ~log log n).
  std::vector<std::uint64_t> level_count(64, 0);
  std::uint64_t cur_max = 0;
  for (const std::uint64_t l : load) {
    if (l >= level_count.size()) level_count.resize(l + 1, 0);
    ++level_count[l];
    cur_max = std::max(cur_max, l);
  }
  auto move_bin = [&](std::uint64_t bin, bool up) {
    const std::uint64_t before = load[bin];
    const std::uint64_t after = up ? before + 1 : before - 1;
    if (after >= level_count.size()) level_count.resize(after + 1, 0);
    --level_count[before];
    ++level_count[after];
    load[bin] = after;
    if (after > cur_max) cur_max = after;
    while (cur_max > 0 && level_count[cur_max] == 0) --cur_max;
  };
  std::uint64_t stationary_max = 0;
  for (std::uint64_t s = 0; s < steps; ++s) {
    const std::uint64_t ball = rng::bounded(rng, n);
    move_bin(home[ball], /*up=*/false);
    std::uint64_t best = rng::bounded(rng, n);
    messages += d + 1;
    for (std::uint32_t j = 1; j < d; ++j) {
      const std::uint64_t cand = rng::bounded(rng, n);
      if (load[cand] < load[best]) best = cand;
    }
    home[ball] = static_cast<std::uint32_t>(best);
    move_bin(best, /*up=*/true);
    if (s >= steps / 2 && cur_max > stationary_max) stationary_max = cur_max;
  }
  return BibResult{stationary_max, messages, 1, 0};
}

}  // namespace clb::bib
