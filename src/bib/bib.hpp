// Static balls-into-bins games — the "Known Results" comparators (§1.1).
//
// These are the task-allocation (global generation) counterparts the paper
// contrasts its local, threshold-triggered scheme against:
//   * single-choice placement             -> Theta(log n / log log n) max load
//   * ABKU sequential greedy-d [ABKU94]   -> log log n / log d + O(1)
//   * ACMR parallel r-round threshold game [ACMR95]
//   * Stemann's parallel protocol [Ste96]
//   * BMS weighted balls [BMS97] (weighted greedy-d realisation)
//   * the ABKU *infinite* (continuous) greedy-d process
//
// All are exact simulations with explicit message accounting, so EXP-09's
// communication comparison (ours vs Theta(n) messages per step for
// balls-into-bins) and EXP-12's max-load table come straight from here.
#pragma once

#include <cstdint>
#include <vector>

namespace clb::bib {

struct BibResult {
  std::uint64_t max_load = 0;
  std::uint64_t messages = 0;      ///< probes + placements
  std::uint32_t rounds = 0;        ///< communication rounds (parallel games)
  std::uint64_t unallocated = 0;   ///< balls left over (parallel games)
};

/// Places m balls into n bins, each i.u.a.r. (one message per ball).
BibResult single_choice(std::uint64_t m, std::uint64_t n, std::uint64_t seed);

/// ABKU sequential greedy-d: each ball probes d i.u.a.r. bins and joins the
/// least loaded (ties to the lowest index probed). d*m probe messages plus m
/// placements.
BibResult greedy_d(std::uint64_t m, std::uint64_t n, std::uint32_t d,
                   std::uint64_t seed);

/// Weighted greedy-d [BMS97 realisation]: balls carry weights; each joins
/// the bin with the least current *weight* among d choices. Returns the
/// maximum bin weight in `max_load` (rounded up).
BibResult weighted_greedy_d(const std::vector<double>& weights,
                            std::uint64_t n, std::uint32_t d,
                            std::uint64_t seed);

struct AcmrConfig {
  std::uint32_t rounds = 2;
  /// Per-round acceptance threshold T; 0 realises the paper's
  /// r-th root formula sqrt[r]{(2r + o(1)) log n / log log n} (base-2 logs).
  std::uint64_t threshold = 0;
  std::uint32_t choices = 2;
};

/// ACMR parallel threshold game: in each of r rounds every unallocated ball
/// sends requests to its `choices` i.u.a.r. bins (fixed across rounds); each
/// bin accepts up to `threshold` balls per round. Terminates with max load
/// <= r * threshold when all balls place.
BibResult acmr_parallel(std::uint64_t m, std::uint64_t n, AcmrConfig cfg,
                        std::uint64_t seed);

/// ACMR's load-aware two-round strategy: round one, every ball announces
/// itself to `choices` i.u.a.r. bins and each bin replies with the ball's
/// arrival rank; round two, the ball commits to the bin where its rank is
/// lowest (ties to the first choice). Achieves the
/// O(sqrt(log n / log log n)) two-round bound of [ACMR95].
BibResult acmr_greedy_2round(std::uint64_t m, std::uint64_t n,
                             std::uint32_t choices, std::uint64_t seed);

/// Stemann-style parallel collision protocol: each ball commits to 2
/// i.u.a.r. bins; in round i every unallocated ball re-requests both bins
/// and a bin accepts arrivals while its load is below the round-i threshold
/// tau_i = i (the "very simple class" with linearly growing acceptance).
BibResult stemann_collision(std::uint64_t m, std::uint64_t n,
                            std::uint32_t max_rounds, std::uint64_t seed);

/// ABKU's infinite (continuous) process: n balls live in n bins; per step
/// one ball chosen i.u.a.r. is removed and re-placed with greedy-d. Returns
/// the maximum load observed over the final half of the run (stationary
/// regime), matching the log log n / log d + O(1) statement.
BibResult infinite_greedy_d(std::uint64_t n, std::uint32_t d,
                            std::uint64_t steps, std::uint64_t seed);

}  // namespace clb::bib
