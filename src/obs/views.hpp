// Bridges between the simulator's hot accounting structs and the metrics
// registry.
//
// sim::MessageCounters and core::PhaseStats/AggregateStats stay plain
// structs — the hot paths keep bumping raw uint64 fields — and the registry
// absorbs them either as
//
//   * live views (`expose_*`): the registry reads the struct at export
//     time; zero copies, but the struct must outlive every export. Use for
//     objects that live for the whole run.
//   * snapshots (`snapshot_*`): one-time copies under a name prefix. Use
//     inside sweep loops where the engine dies before the recorder.
//
// Header-only on purpose: it depends on sim/ and core/ headers, while the
// compiled clb_obs library stays at the bottom of the dependency stack
// (sim and core link *against* clb_obs for tracing).
#pragma once

#include <string>

#include "core/phase_stats.hpp"
#include "dist/network.hpp"
#include "obs/metrics.hpp"
#include "sim/counters.hpp"
#include "sim/engine.hpp"

namespace clb::obs {

/// Live view over a MessageCounters instance (every field plus the derived
/// protocol_total). `c` must outlive every registry export.
inline void expose_message_counters(MetricsRegistry& m,
                                    const sim::MessageCounters& c,
                                    const std::string& prefix =
                                        "sim.messages.") {
  m.expose_counter(prefix + "queries", &c.queries);
  m.expose_counter(prefix + "accepts", &c.accepts);
  m.expose_counter(prefix + "id_messages", &c.id_messages);
  m.expose_counter(prefix + "control", &c.control);
  m.expose_counter(prefix + "transfers", &c.transfers);
  m.expose_counter(prefix + "tasks_moved", &c.tasks_moved);
  m.expose_gauge(prefix + "protocol_total", [&c] {
    return static_cast<double>(c.protocol_total());
  });
}

/// Live view over a balancer's aggregate phase statistics. `a` must outlive
/// every registry export.
inline void expose_aggregate_stats(MetricsRegistry& m,
                                   const core::AggregateStats& a,
                                   const std::string& prefix =
                                       "core.phases.") {
  m.expose_counter(prefix + "count", &a.phases);
  m.expose_counter(prefix + "with_heavy", &a.phases_with_heavy);
  m.expose_counter(prefix + "matched", &a.total_matched);
  m.expose_counter(prefix + "unmatched", &a.total_unmatched);
  m.expose_counter(prefix + "preround_matched", &a.total_preround_matched);
  m.expose_counter(prefix + "failed_requests", &a.total_failed_requests);
  m.expose_counter(prefix + "max_levels", &a.max_levels_used);
  m.expose_gauge(prefix + "heavy_mean",
                 [&a] { return a.heavy_per_phase.mean(); });
  m.expose_gauge(prefix + "light_mean",
                 [&a] { return a.light_per_phase.mean(); });
  m.expose_gauge(prefix + "messages_mean",
                 [&a] { return a.messages_per_phase.mean(); });
  m.expose_gauge(prefix + "requests_per_heavy_mean",
                 [&a] { return a.requests_per_heavy.mean(); });
  m.expose_gauge(prefix + "match_rate_mean",
                 [&a] { return a.match_rate.mean(); });
}

/// Live view over an engine's counters and load aggregates. `e` must
/// outlive every registry export.
inline void expose_engine(MetricsRegistry& m, const sim::Engine& e,
                          const std::string& prefix = "sim.engine.") {
  expose_message_counters(m, e.messages(), prefix + "messages.");
  m.expose_gauge(prefix + "total_load",
                 [&e] { return static_cast<double>(e.total_load()); });
  m.expose_gauge(prefix + "step_max_load",
                 [&e] { return static_cast<double>(e.step_max_load()); });
  m.expose_gauge(prefix + "running_max_load",
                 [&e] { return static_cast<double>(e.running_max_load()); });
  m.expose_gauge(prefix + "locality", [&e] { return e.locality_fraction(); });
  m.expose_gauge(prefix + "steps",
                 [&e] { return static_cast<double>(e.step()); });
}

/// Point-in-time copy of an engine's headline quantities under `prefix`
/// (safe after the engine is destroyed).
inline void snapshot_engine(MetricsRegistry& m, const sim::Engine& e,
                            const std::string& prefix) {
  const sim::MessageCounters& c = e.messages();
  m.counter(prefix + "messages.queries") = c.queries;
  m.counter(prefix + "messages.accepts") = c.accepts;
  m.counter(prefix + "messages.id_messages") = c.id_messages;
  m.counter(prefix + "messages.control") = c.control;
  m.counter(prefix + "messages.transfers") = c.transfers;
  m.counter(prefix + "messages.tasks_moved") = c.tasks_moved;
  m.counter(prefix + "messages.protocol_total") = c.protocol_total();
  m.counter(prefix + "steps") = e.step();
  m.counter(prefix + "total_generated") = e.total_generated();
  m.counter(prefix + "total_consumed") = e.total_consumed();
  m.counter(prefix + "running_max_load") = e.running_max_load();
  m.gauge(prefix + "locality") = e.locality_fraction();
}

/// Live view over a dist::Network's fabric statistics. `net` must outlive
/// every registry export. Gauge names deliberately mirror the rt latency
/// fabric's telemetry gauges (fabric_max_in_flight / fabric_mean_in_flight)
/// so dist/ and rt/ runs export comparable delivery-queue telemetry.
inline void expose_network(MetricsRegistry& m, const dist::Network& net,
                           const std::string& prefix = "dist.net.") {
  m.expose_gauge(prefix + "sent",
                 [&net] { return static_cast<double>(net.total_sent()); });
  m.expose_gauge(prefix + "delivered", [&net] {
    return static_cast<double>(net.total_delivered());
  });
  m.expose_gauge(prefix + "in_flight",
                 [&net] { return static_cast<double>(net.in_flight()); });
  m.expose_gauge(prefix + "fabric_max_in_flight", [&net] {
    return static_cast<double>(net.max_in_flight());
  });
  m.expose_gauge(prefix + "fabric_mean_in_flight",
                 [&net] { return net.mean_in_flight(); });
  m.expose_gauge(prefix + "hops",
                 [&net] { return static_cast<double>(net.total_hops()); });
  m.expose_gauge(prefix + "retransmits", [&net] {
    return static_cast<double>(net.retransmits());
  });
  m.expose_gauge(prefix + "dup_suppressed", [&net] {
    return static_cast<double>(net.dup_suppressed());
  });
  m.expose_gauge(prefix + "link_queued_delay", [&net] {
    return static_cast<double>(net.link_queued_delay());
  });
}

/// Point-in-time copy of a network's fabric statistics under `prefix`
/// (safe after the network is destroyed; sweep loops use this).
inline void snapshot_network(MetricsRegistry& m, const dist::Network& net,
                             const std::string& prefix) {
  m.counter(prefix + "sent") = net.total_sent();
  m.counter(prefix + "delivered") = net.total_delivered();
  m.counter(prefix + "in_flight") = net.in_flight();
  m.counter(prefix + "fabric_max_in_flight") = net.max_in_flight();
  m.gauge(prefix + "fabric_mean_in_flight") = net.mean_in_flight();
  m.counter(prefix + "hops") = net.total_hops();
  m.counter(prefix + "retransmits") = net.retransmits();
  m.counter(prefix + "dup_suppressed") = net.dup_suppressed();
  m.counter(prefix + "link_queued_delay") = net.link_queued_delay();
}

/// Feeds one finalised phase into per-phase distribution histograms. The
/// threshold balancer calls this when a MetricsRegistry is attached.
inline void record_phase(MetricsRegistry& m, const core::PhaseStats& p,
                         const std::string& prefix = "core.phase.") {
  m.histogram(prefix + "heavy").add(p.num_heavy);
  m.histogram(prefix + "light").add(p.num_light);
  m.histogram(prefix + "requests").add(p.requests);
  m.histogram(prefix + "messages").add(p.messages);
  m.histogram(prefix + "collision_rounds").add(p.collision_rounds);
  m.histogram(prefix + "levels_used").add(p.levels_used);
}

}  // namespace clb::obs
