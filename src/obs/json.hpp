// Minimal streaming JSON writer used by the observability emitters.
//
// The repo deliberately has no third-party JSON dependency; the obs layer
// only ever *writes* JSON (traces, metrics, manifests), and the writer below
// is enough for that: objects, arrays, escaped strings, integers, doubles
// (non-finite values become null, which keeps the output standard JSON).
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <system_error>
#include <vector>

namespace clb::obs {

/// Appends `s` to `out` as a quoted, escaped JSON string literal.
inline void json_append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

/// Streaming writer: begin/end containers, `key` inside objects, `value`
/// anywhere a value is legal. Comma placement is handled automatically.
/// Usage errors (value with no key inside an object, unbalanced ends) are
/// the caller's responsibility — this is an internal building block.
class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view name) {
    comma();
    json_append_escaped(out_, name);
    out_ += ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    json_append_escaped(out_, v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::uint32_t v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v) {
    comma();
    if (v != v || v > 1.7e308 || v < -1.7e308) {  // NaN / +-inf
      out_ += "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& null() {
    comma();
    out_ += "null";
    return *this;
  }
  /// Splices a pre-encoded JSON fragment in value position.
  JsonWriter& raw(std::string_view fragment) {
    comma();
    out_ += fragment;
    return *this;
  }

  template <typename T>
  JsonWriter& member(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    need_comma_.push_back(false);
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    if (!need_comma_.empty()) need_comma_.pop_back();
    if (!need_comma_.empty()) need_comma_.back() = true;
    pending_key_ = false;
    return *this;
  }
  void comma() {
    if (pending_key_) {
      // Value completes the key; the container's comma state was already
      // advanced when the key was written.
      pending_key_ = false;
      return;
    }
    if (!need_comma_.empty()) {
      if (need_comma_.back()) out_ += ',';
      need_comma_.back() = true;
    }
  }

  std::string out_;
  std::vector<bool> need_comma_;
  bool pending_key_ = false;
};

/// Writes `content` to `path`, creating parent directories as needed;
/// returns false (with a stderr warning) on failure. All obs emitters
/// funnel through this.
inline bool write_text_file(const std::string& path,
                            const std::string& content) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // best effort
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
                  content.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace clb::obs
