#include "obs/recorder.hpp"

namespace clb::obs {

std::string jsonl_sibling(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + ".jsonl";
  }
  return path.substr(0, dot) + ".jsonl";
}

Recorder::Recorder(RecorderConfig cfg)
    : cfg_(std::move(cfg)),
      sink_(TraceSinkConfig{!cfg_.trace_path.empty(), cfg_.trace_sample}),
      manifest_(cfg_.tool) {
  manifest_.set_command(cfg_.command);
  if (cfg_.trace_sample > 1) {
    manifest_.set_param("trace_sample",
                        static_cast<std::uint64_t>(cfg_.trace_sample));
  }
}

bool Recorder::active() const {
  return !cfg_.trace_path.empty() || !cfg_.metrics_path.empty() ||
         !cfg_.manifest_path.empty();
}

bool Recorder::finish() {
  if (finished_) return true;
  finished_ = true;
  bool ok = true;
  if (!cfg_.trace_path.empty()) {
    const std::string jsonl = jsonl_sibling(cfg_.trace_path);
    ok &= sink_.write_chrome_trace(cfg_.trace_path);
    ok &= sink_.write_jsonl(jsonl);
    manifest_.add_output("chrome_trace", cfg_.trace_path);
    manifest_.add_output("jsonl_trace", jsonl);
  }
  if (!cfg_.metrics_path.empty()) {
    ok &= metrics_.write_json(cfg_.metrics_path);
    manifest_.add_output("metrics", cfg_.metrics_path);
  }
  if (!cfg_.manifest_path.empty()) {
    manifest_.set_wall_seconds(watch_.elapsed_seconds());
    ok &= manifest_.write(cfg_.manifest_path);
  }
  return ok;
}

}  // namespace clb::obs
