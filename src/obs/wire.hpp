// Per-link wire gauges for socket-backed transports: byte/frame counts per
// direction plus the control-plane round-trip histogram (microseconds from
// barrier send to release receipt — the cross-process analogue of the
// in-proc barrier stall). export_wire_stats() lays them into a
// MetricsRegistry under a caller prefix so bench harnesses and the EXP-26
// report read one vocabulary regardless of transport.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "stats/histogram.hpp"

namespace clb::obs {

struct WireStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t barriers = 0;
  stats::IntHistogram barrier_rtt_us;

  void merge(const WireStats& o) {
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    frames_sent += o.frames_sent;
    frames_received += o.frames_received;
    barriers += o.barriers;
    barrier_rtt_us.merge(o.barrier_rtt_us);
  }
};

/// Gauges written: <prefix>wire.bytes_sent, .bytes_received, .frames_sent,
/// .frames_received, .barriers, .barrier_rtt_mean_us, .barrier_rtt_p99_us.
inline void export_wire_stats(MetricsRegistry& m, const std::string& prefix,
                              const WireStats& s) {
  m.gauge(prefix + "wire.bytes_sent") = static_cast<double>(s.bytes_sent);
  m.gauge(prefix + "wire.bytes_received") =
      static_cast<double>(s.bytes_received);
  m.gauge(prefix + "wire.frames_sent") = static_cast<double>(s.frames_sent);
  m.gauge(prefix + "wire.frames_received") =
      static_cast<double>(s.frames_received);
  m.gauge(prefix + "wire.barriers") = static_cast<double>(s.barriers);
  m.gauge(prefix + "wire.barrier_rtt_mean_us") = s.barrier_rtt_us.mean();
  m.gauge(prefix + "wire.barrier_rtt_p99_us") =
      static_cast<double>(s.barrier_rtt_us.quantile(0.99));
}

}  // namespace clb::obs
