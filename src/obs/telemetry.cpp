#include "obs/telemetry.hpp"

#include "obs/json.hpp"

namespace clb::obs {

std::uint64_t Pow2Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) {
      if (b == 0) return 0;
      const std::uint64_t lo = 1ULL << (b - 1);
      const std::uint64_t hi = b >= 64 ? ~0ULL : (1ULL << b) - 1;
      return lo + (hi - lo) / 2;
    }
  }
  return max_;
}

void Pow2Histogram::merge(const Pow2Histogram& other) {
  for (unsigned b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

void Pow2Histogram::clear() {
  for (auto& b : buckets_) b = 0;
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

void WorkerTelemetry::merge(const WorkerTelemetry& other) {
  steps += other.steps;
  step_ns += other.step_ns;
  stall_ns += other.stall_ns;
  barrier_waits += other.barrier_waits;
  enq_self += other.enq_self;
  enq_remote += other.enq_remote;
  deq += other.deq;
  drains += other.drains;
  generated += other.generated;
  consumed += other.consumed;
  phases += other.phases;
  steals += other.steals;
  stolen_tasks += other.stolen_tasks;
  if (other.fabric_max_in_flight > fabric_max_in_flight) {
    fabric_max_in_flight = other.fabric_max_in_flight;
  }
  fabric_flight_sum += other.fabric_flight_sum;
  fabric_flight_samples += other.fabric_flight_samples;
  step_ns_hist.merge(other.step_ns_hist);
  stall_ns_hist.merge(other.stall_ns_hist);
  drain_batch_hist.merge(other.drain_batch_hist);
  phase_steps_hist.merge(other.phase_steps_hist);
}

void merge_worker_telemetry(MetricsRegistry& m, const WorkerTelemetry& t,
                            const std::string& prefix) {
  m.counter(prefix + "steps") = t.steps;
  m.counter(prefix + "step_ns") = t.step_ns;
  m.counter(prefix + "stall_ns") = t.stall_ns;
  m.counter(prefix + "work_ns") = t.work_ns();
  m.counter(prefix + "barrier_waits") = t.barrier_waits;
  m.counter(prefix + "enq_self") = t.enq_self;
  m.counter(prefix + "enq_remote") = t.enq_remote;
  m.counter(prefix + "deq") = t.deq;
  m.counter(prefix + "drains") = t.drains;
  m.counter(prefix + "generated") = t.generated;
  m.counter(prefix + "consumed") = t.consumed;
  m.counter(prefix + "phases") = t.phases;
  m.counter(prefix + "steals") = t.steals;
  m.counter(prefix + "stolen_tasks") = t.stolen_tasks;
  m.gauge(prefix + "utilization") = t.utilization();
  m.gauge(prefix + "stall_fraction") = t.stall_fraction();
  m.gauge(prefix + "drain_batch_mean") = t.drain_batch_hist.mean();
  m.gauge(prefix + "drain_batch_p99") =
      static_cast<double>(t.drain_batch_hist.quantile(0.99));
  m.gauge(prefix + "barrier_wait_p50_ns") =
      static_cast<double>(t.stall_ns_hist.quantile(0.50));
  m.gauge(prefix + "barrier_wait_p99_ns") =
      static_cast<double>(t.stall_ns_hist.quantile(0.99));
  m.gauge(prefix + "barrier_wait_max_ns") =
      static_cast<double>(t.stall_ns_hist.max());
  m.gauge(prefix + "step_p50_ns") =
      static_cast<double>(t.step_ns_hist.quantile(0.50));
  m.gauge(prefix + "step_p99_ns") =
      static_cast<double>(t.step_ns_hist.quantile(0.99));
  m.gauge(prefix + "phase_steps_mean") = t.phase_steps_hist.mean();
  m.gauge(prefix + "phase_steps_max") =
      static_cast<double>(t.phase_steps_hist.max());
}

void append_telemetry_snapshot(std::string& out, const std::string& tag,
                               std::uint64_t step, unsigned worker,
                               unsigned workers, std::uint64_t shard_load,
                               const WorkerTelemetry& t) {
  JsonWriter w;
  w.begin_object();
  w.member("kind", "rt_telemetry");
  if (!tag.empty()) w.member("tag", tag);
  w.member("step", step);
  w.member("worker", static_cast<std::uint64_t>(worker));
  w.member("workers", static_cast<std::uint64_t>(workers));
  w.member("shard_load", shard_load);
  w.member("steps", t.steps);
  w.member("step_ns", t.step_ns);
  w.member("stall_ns", t.stall_ns);
  w.member("work_ns", t.work_ns());
  w.member("barrier_waits", t.barrier_waits);
  w.member("enq_self", t.enq_self);
  w.member("enq_remote", t.enq_remote);
  w.member("deq", t.deq);
  w.member("drains", t.drains);
  w.member("generated", t.generated);
  w.member("consumed", t.consumed);
  w.member("phases", t.phases);
  w.end_object();
  out += w.str();
  out += '\n';
}

}  // namespace clb::obs
