#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>

#include "obs/json.hpp"

namespace clb::obs {

namespace {

std::uint64_t next_sink_id() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

// Field names per kind, in (proc, peer, v0, v1, v2) order; nullptr = omit.
struct KindSchema {
  const char* name;
  const char* proc;
  const char* peer;
  const char* v0;
  const char* v1;
  const char* v2;
};

constexpr KindSchema kSchemas[] = {
    {"phase_begin", nullptr, nullptr, "phase", "heavy", "light"},
    {"phase_end", nullptr, nullptr, "phase", "matched", "unmatched"},
    {"tree_level", "level", nullptr, "requests", "rounds", "messages"},
    {"collision_round", "round", nullptr, "active", "queries", "accepts"},
    {"query", "src", "dst", "phase", "level", nullptr},
    {"accept", "src", "dst", "phase", "level", nullptr},
    {"id_message", "root", "partner", "phase", "level", nullptr},
    {"transfer", "from", "to", "count", nullptr, nullptr},
    {"preround_match", "root", "partner", "phase", nullptr, nullptr},
    {"barrier_wait", nullptr, nullptr, "wait_ns", nullptr, nullptr},
    {"mailbox_drain", nullptr, nullptr, "batch", nullptr, nullptr},
    {"worker_step", nullptr, nullptr, "step_ns", "work_ns", nullptr},
};
static_assert(sizeof(kSchemas) / sizeof(kSchemas[0]) ==
                  static_cast<std::size_t>(EventKind::kKindCount_),
              "every EventKind needs a schema row");

const KindSchema& schema_of(EventKind kind) {
  return kSchemas[static_cast<std::size_t>(kind)];
}

// Chrome trace thread ids: one visual track per event family, plus one
// track per runtime worker (kTidWorkerBase + worker) for the worker-lane
// kinds, so a multi-worker rt run renders barrier waits / drains / steps
// as parallel lanes.
constexpr int kTidPhases = 0;
constexpr int kTidSearch = 1;
constexpr int kTidMessages = 2;
constexpr int kTidTransfers = 3;
constexpr int kTidWorkerBase = 100;

int chrome_tid(const TraceEvent& e) {
  if (event_kind_worker_lane(e.kind)) {
    return kTidWorkerBase + static_cast<int>(e.worker);
  }
  switch (e.kind) {
    case EventKind::kPhaseBegin:
    case EventKind::kPhaseEnd:
      return kTidPhases;
    case EventKind::kTreeLevel:
    case EventKind::kCollisionRound:
      return kTidSearch;
    case EventKind::kTransfer:
      return kTidTransfers;
    default:
      return kTidMessages;
  }
}

void append_args(JsonWriter& w, const TraceEvent& e) {
  const KindSchema& s = schema_of(e.kind);
  w.begin_object();
  if (s.proc != nullptr) w.member(s.proc, static_cast<std::uint64_t>(e.proc));
  if (s.peer != nullptr) w.member(s.peer, static_cast<std::uint64_t>(e.peer));
  if (s.v0 != nullptr) w.member(s.v0, e.v0);
  if (s.v1 != nullptr) w.member(s.v1, e.v1);
  if (s.v2 != nullptr) w.member(s.v2, e.v2);
  w.member("worker", static_cast<std::uint64_t>(e.worker));
  w.end_object();
}

}  // namespace

const char* event_kind_name(EventKind kind) {
  return schema_of(kind).name;
}

TraceSink::TraceSink(TraceSinkConfig cfg) : cfg_(cfg), id_(next_sink_id()) {
  if (cfg_.sample_every == 0) cfg_.sample_every = 1;
}

TraceSink::Buffer& TraceSink::local_buffer() {
  // Per-thread cache of (sink id -> buffer). Sink ids are process-unique,
  // so a stale entry for a destroyed sink can never be matched by a new
  // one. Linear scan: a thread talks to very few distinct sinks.
  thread_local std::vector<std::pair<std::uint64_t, Buffer*>> cache;
  for (const auto& [id, buf] : cache) {
    if (id == id_) return *buf;
  }
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<Buffer>());
  Buffer* buf = buffers_.back().get();
  cache.emplace_back(id_, buf);
  return *buf;
}

std::uint64_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& b : buffers_) total += b->events.size();
  return total;
}

std::uint64_t TraceSink::events_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& b : buffers_) total += b->seen;
  return total;
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t total = 0;
    for (const auto& b : buffers_) total += b->events.size();
    all.reserve(total);
    for (const auto& b : buffers_) {
      all.insert(all.end(), b->events.begin(), b->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.step < b.step;
                   });
  return all;
}

void TraceSink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& b : buffers_) {
    b->events.clear();
    b->seen = 0;
  }
}

std::string TraceSink::to_jsonl() const {
  std::string out;
  for (const TraceEvent& e : snapshot()) {
    JsonWriter w;
    w.begin_object();
    w.member("kind", event_kind_name(e.kind));
    w.member("step", e.step);
    const KindSchema& s = schema_of(e.kind);
    if (s.proc != nullptr) w.member(s.proc, static_cast<std::uint64_t>(e.proc));
    if (s.peer != nullptr) w.member(s.peer, static_cast<std::uint64_t>(e.peer));
    if (s.v0 != nullptr) w.member(s.v0, e.v0);
    if (s.v1 != nullptr) w.member(s.v1, e.v1);
    if (s.v2 != nullptr) w.member(s.v2, e.v2);
    w.member("worker", static_cast<std::uint64_t>(e.worker));
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

bool TraceSink::write_jsonl(const std::string& path) const {
  return write_text_file(path, to_jsonl());
}

std::string TraceSink::to_chrome_trace() const {
  const std::vector<TraceEvent> events = snapshot();
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  auto meta = [&w](const char* name, int tid, const char* label) {
    w.begin_object();
    w.member("name", name);
    w.member("ph", "M");
    w.member("pid", 0);
    w.member("tid", tid);
    w.key("args").begin_object().member("name", label).end_object();
    w.end_object();
  };
  meta("process_name", 0, "clb simulation");
  meta("thread_name", kTidPhases, "phases");
  meta("thread_name", kTidSearch, "partner search");
  meta("thread_name", kTidMessages, "protocol messages");
  meta("thread_name", kTidTransfers, "task transfers");
  // One named lane per worker that produced worker-lane events.
  {
    std::vector<bool> seen;
    for (const TraceEvent& e : events) {
      if (!event_kind_worker_lane(e.kind)) continue;
      if (e.worker >= seen.size()) seen.resize(e.worker + 1, false);
      seen[e.worker] = true;
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
      if (!seen[i]) continue;
      const std::string label = "worker " + std::to_string(i);
      meta("thread_name", kTidWorkerBase + static_cast<int>(i), label.c_str());
    }
  }

  // Pair phase begin/end events (they are sequential per run) into complete
  // ("X") slices; an unpaired trailing begin gets a 1-step slice.
  bool phase_open = false;
  TraceEvent open_begin{};
  auto flush_phase = [&](const TraceEvent* end) {
    if (!phase_open) return;
    const std::uint64_t end_step =
        end != nullptr ? std::max(end->step, open_begin.step + 1)
                       : open_begin.step + 1;
    w.begin_object();
    w.member("name", "phase " + std::to_string(open_begin.v0));
    w.member("cat", "phase");
    w.member("ph", "X");
    w.member("ts", open_begin.step);
    w.member("dur", end_step - open_begin.step);
    w.member("pid", 0);
    w.member("tid", kTidPhases);
    w.key("args").begin_object();
    w.member("phase", open_begin.v0);
    w.member("heavy", open_begin.v1);
    w.member("light", open_begin.v2);
    if (end != nullptr) {
      w.member("matched", end->v1);
      w.member("unmatched", end->v2);
    }
    w.end_object();
    w.end_object();
    phase_open = false;
  };

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kPhaseBegin: {
        flush_phase(nullptr);  // defensive: back-to-back begins
        phase_open = true;
        open_begin = e;
        // Classification counter track alongside the slice.
        w.begin_object();
        w.member("name", "classification");
        w.member("ph", "C");
        w.member("ts", e.step);
        w.member("pid", 0);
        w.member("tid", kTidPhases);
        w.key("args").begin_object();
        w.member("heavy", e.v1);
        w.member("light", e.v2);
        w.end_object();
        w.end_object();
        break;
      }
      case EventKind::kPhaseEnd:
        flush_phase(&e);
        break;
      default: {
        w.begin_object();
        w.member("name", event_kind_name(e.kind));
        w.member("cat", event_kind_name(e.kind));
        w.member("ph", "i");
        w.member("s", "t");
        w.member("ts", e.step);
        w.member("pid", 0);
        w.member("tid", chrome_tid(e));
        w.key("args");
        append_args(w, e);
        w.end_object();
        break;
      }
    }
  }
  flush_phase(nullptr);

  w.end_array();
  w.end_object();
  return w.take();
}

bool TraceSink::write_chrome_trace(const std::string& path) const {
  return write_text_file(path, to_chrome_trace());
}

}  // namespace clb::obs
