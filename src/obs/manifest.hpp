// Run manifests: one JSON file per run that records everything needed to
// reproduce it — the tool, its exact command line, the master seed, the
// realised parameters (n, beta, a, b, c, T, ...), the git SHA and build
// flags of the binary, wall time, and which emitter outputs the run wrote.
//
// The replay contract: re-running `command` against the same git SHA must
// reproduce every table value bit-for-bit (all randomness in the repo is
// counter-RNG keyed off the recorded seed). EXPERIMENTS.md documents the
// workflow.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace clb::obs {

/// Build provenance compiled into the library (see src/obs/CMakeLists.txt).
struct BuildInfo {
  [[nodiscard]] static std::string git_sha();
  [[nodiscard]] static std::string build_type();
  [[nodiscard]] static std::string compiler();
  [[nodiscard]] static bool trace_compiled();
};

class Manifest {
 public:
  explicit Manifest(std::string tool = "");

  void set_tool(std::string tool) { tool_ = std::move(tool); }
  void set_command(int argc, char** argv);
  void set_command(std::vector<std::string> argv) { command_ = std::move(argv); }
  void set_seed(std::uint64_t seed) { seed_ = seed; has_seed_ = true; }
  void set_wall_seconds(double s) { wall_seconds_ = s; }

  /// Parameters are an ordered name -> value map; setting an existing name
  /// overwrites it. Values keep their JSON type.
  void set_param(std::string_view name, std::uint64_t v);
  void set_param(std::string_view name, std::int64_t v);
  void set_param(std::string_view name, double v);
  void set_param(std::string_view name, bool v);
  void set_param(std::string_view name, std::string_view v);
  void set_param(std::string_view name, const char* v) {
    set_param(name, std::string_view(v));
  }

  /// Records an output file this run produced (kind: "chrome_trace",
  /// "jsonl_trace", "metrics", "csv", ...).
  void add_output(std::string_view kind, std::string_view path);

  [[nodiscard]] const std::string& tool() const { return tool_; }
  [[nodiscard]] std::string to_json() const;
  bool write(const std::string& path) const;

 private:
  // Values are stored pre-encoded as JSON fragments so heterogeneous types
  // need no variant machinery.
  void set_raw_param(std::string_view name, std::string encoded);

  std::string tool_;
  std::vector<std::string> command_;
  std::uint64_t seed_ = 0;
  bool has_seed_ = false;
  double wall_seconds_ = -1;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<std::pair<std::string, std::string>> outputs_;  // kind, path
};

}  // namespace clb::obs
