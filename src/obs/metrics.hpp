// Named metrics registry: counters, gauges, histograms, and zero-copy
// "views" over counters that live elsewhere.
//
// The simulator's hot structs (sim::MessageCounters, core::PhaseStats)
// remain the storage — balancers keep bumping plain uint64 fields exactly as
// before, so instrumentation adds no indirection to hot paths. The registry
// gives those quantities *names* and one machine-readable export:
//
//   * counter(name) / gauge(name) / histogram(name) — owned metrics,
//     create-or-get: the same name always returns the same object, so
//     re-registration is idempotent (and a name may never change kind —
//     that is a CLB_CHECK failure, it means two call sites disagree about
//     what the metric is).
//   * expose_counter / expose_gauge — register a *view*: the registry
//     stores a pointer/closure and reads the live value at export time.
//     obs/views.hpp uses this to absorb MessageCounters, AggregateStats and
//     engine aggregates wholesale. The referenced object must outlive every
//     export.
//
// Export is a single JSON object {counters, gauges, histograms}; histograms
// carry count/mean/p50/p90/p99/p999/max built on stats::IntHistogram's
// quantile machinery.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "stats/histogram.hpp"

namespace clb::obs {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get an owned counter. The returned reference stays valid for
  /// the registry's lifetime (map nodes are stable).
  std::uint64_t& counter(std::string_view name);
  /// Create-or-get an owned gauge.
  double& gauge(std::string_view name);
  /// Create-or-get an owned histogram.
  stats::IntHistogram& histogram(std::string_view name);

  /// Registers a live view over an external counter; `source` must outlive
  /// every export. Re-exposing the same name just swaps the source.
  void expose_counter(std::string_view name, const std::uint64_t* source);
  /// Registers a live computed gauge (e.g. a derived ratio).
  void expose_gauge(std::string_view name, std::function<double()> source);

  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Current value of any counter-kind entry (owned or view).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  /// Current value of any gauge-kind entry (owned or view).
  [[nodiscard]] double gauge_value(std::string_view name) const;

  [[nodiscard]] std::string to_json() const;
  bool write_json(const std::string& path) const;

  void clear() { entries_.clear(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCounterView, kGaugeView };

  struct Entry {
    Kind kind;
    std::uint64_t u64 = 0;
    double f64 = 0;
    std::unique_ptr<stats::IntHistogram> hist;
    const std::uint64_t* u64_source = nullptr;
    std::function<double()> f64_source;
  };

  Entry& get_or_create(std::string_view name, Kind kind);

  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace clb::obs
