// Per-worker hot-path telemetry for the concurrent runtime.
//
// The rt scaling work (ROADMAP: n = 2^20..2^24) needs to see where worker
// threads actually spend a superstep: draining mailboxes, blocked in the
// phase barrier, or doing task work. This header provides the two pieces
// that make that observable without taxing the hot path:
//
//   * Pow2Histogram — a fixed-size, allocation-free histogram with
//     power-of-two buckets. stats::IntHistogram indexes its counts vector
//     BY VALUE, which is perfect for task sojourns measured in steps but
//     unusable for nanosecond samples (a 10ms barrier wait would allocate a
//     ten-million-entry vector). Pow2Histogram::add is a bit_width, an
//     array increment and two adds — safe to call once per drain or per
//     barrier on a worker thread.
//   * WorkerTelemetry — the per-worker counter/histogram bundle. Each
//     worker owns exactly one instance and is its only writer, so the hot
//     path takes no locks and no atomics; merging happens at barrier-ordered
//     points (the runtime's snapshot emitter, or the main thread between
//     run() calls — the command barrier publishes the plain fields).
//
// Cost discipline (same contract as CLB_TRACE, see obs/trace.hpp):
//   * Compile time: -DCLB_TELEMETRY=OFF defines CLB_TELEMETRY_ENABLED=0 and
//     every instrumentation block in src/rt compiles away entirely.
//   * Run time: telemetry off costs one predictable branch per superstep;
//     telemetry on adds two steady_clock reads per superstep plus one per
//     barrier wait, and histogram updates as described above.
//   * Determinism: telemetry only OBSERVES — it never feeds back into the
//     protocol, so deterministic-mode outputs (ledger, counters, phase log)
//     are bit-identical with telemetry on or off (test_telemetry proves it).
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

#ifndef CLB_TELEMETRY_ENABLED
#define CLB_TELEMETRY_ENABLED 1
#endif

namespace clb::obs {

/// True when telemetry instrumentation is compiled into the binary.
inline constexpr bool kTelemetryCompiled = CLB_TELEMETRY_ENABLED != 0;

/// Fixed-size histogram over power-of-two buckets: bucket b counts values
/// whose bit_width is b (bucket 0 holds exactly the value 0, bucket b >= 1
/// holds [2^(b-1), 2^b - 1]). add() never allocates, so it is safe on
/// worker hot paths; quantiles return the matched bucket's midpoint (exact
/// for count/sum/mean/max, ~1.5x resolution for percentiles — plenty for
/// "is the barrier wait 2us or 2ms" questions).
class Pow2Histogram {
 public:
  static constexpr unsigned kBuckets = 65;  // bit_width of a uint64 is 0..64

  void add(std::uint64_t v) {
    ++buckets_[std::bit_width(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t bucket(unsigned b) const { return buckets_[b]; }

  /// Value below which a fraction q of the samples fall (bucket midpoint).
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// Element-wise accumulate; totals are conserved (count/sum add, max maxes).
  void merge(const Pow2Histogram& other);

  void clear();

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// One worker thread's hot-path counters and distributions. Single-writer:
/// only the owning worker mutates it while a run is in flight; readers must
/// be ordered behind a barrier (the runtime's command barrier or the
/// snapshot emitter's publish barrier provide the happens-before).
struct WorkerTelemetry {
  // ---- superstep timing ----
  std::uint64_t steps = 0;          ///< supersteps executed
  std::uint64_t step_ns = 0;        ///< total wall ns inside step_once
  std::uint64_t stall_ns = 0;       ///< ns blocked in barrier arrive->release
  std::uint64_t barrier_waits = 0;  ///< barrier arrivals on the step path

  // ---- mailbox traffic ----
  std::uint64_t enq_self = 0;    ///< pushes into the worker's own mailbox
  std::uint64_t enq_remote = 0;  ///< pushes into another worker's mailbox
  std::uint64_t deq = 0;         ///< messages popped from the own mailbox
  std::uint64_t drains = 0;      ///< drain invocations (batches)

  // ---- task work ----
  std::uint64_t generated = 0;
  std::uint64_t consumed = 0;
  std::uint64_t phases = 0;  ///< balancing phases observed (lockstep)

  // ---- work stealing (RtConfig::steal; zero with stealing off) ----
  std::uint64_t steals = 0;        ///< own-victim steal batches shipped
  std::uint64_t stolen_tasks = 0;  ///< tasks those batches carried

  // ---- latency fabric (leader-recorded; zero in instant mode) ----
  std::uint64_t fabric_max_in_flight = 0;
  std::uint64_t fabric_flight_sum = 0;      ///< sum of per-step in-flight
  std::uint64_t fabric_flight_samples = 0;  ///< steps sampled

  // ---- distributions ----
  Pow2Histogram step_ns_hist;      ///< superstep duration, ns
  Pow2Histogram stall_ns_hist;     ///< barrier wait, ns
  Pow2Histogram drain_batch_hist;  ///< messages per drain = observed mailbox
                                   ///< depth (drains always empty the box)
  Pow2Histogram phase_steps_hist;  ///< steps-to-drain per phase (0 = the
                                   ///< instant fabric resolved it in-step)

  /// Wall time actually working: superstep time minus barrier stalls. In
  /// free-running mode this includes the spin work, which is the point —
  /// spin-vs-wait is exactly the utilization split the bench reports.
  [[nodiscard]] std::uint64_t work_ns() const {
    return step_ns >= stall_ns ? step_ns - stall_ns : 0;
  }
  /// work_ns / step_ns in [0, 1]; 0 when no steps ran.
  [[nodiscard]] double utilization() const {
    return step_ns == 0 ? 0.0
                        : static_cast<double>(work_ns()) /
                              static_cast<double>(step_ns);
  }
  /// stall_ns / step_ns in [0, 1]; 0 when no steps ran.
  [[nodiscard]] double stall_fraction() const {
    return step_ns == 0 ? 0.0
                        : static_cast<double>(stall_ns) /
                              static_cast<double>(step_ns);
  }

  /// Accumulates `other` into this; every counter total is conserved
  /// (test_telemetry hammers this from 8 threads under TSan).
  void merge(const WorkerTelemetry& other);
};

/// Exports a (merged) WorkerTelemetry into the registry under `prefix`:
/// counters for every raw total, gauges for the derived ratios and the
/// histogram summaries (p50/p99/max as scalar gauges — registry histograms
/// are value-indexed IntHistograms, unsuitable for ns samples).
void merge_worker_telemetry(MetricsRegistry& m, const WorkerTelemetry& t,
                            const std::string& prefix);

/// Appends one snapshot JSONL line for worker `worker` to `out`:
///   {"kind":"rt_telemetry","tag":...,"step":...,"worker":...,
///    "workers":...,"shard_load":...,<cumulative counters>}
/// Counters are cumulative since construction, so consumers difference
/// adjacent snapshots for per-interval rates. Schema documented in
/// docs/observability.md; validated by tools/check_trace.py --snapshots.
void append_telemetry_snapshot(std::string& out, const std::string& tag,
                               std::uint64_t step, unsigned worker,
                               unsigned workers, std::uint64_t shard_load,
                               const WorkerTelemetry& t);

}  // namespace clb::obs
