#include "obs/metrics.hpp"

#include "obs/json.hpp"
#include "util/check.hpp"

namespace clb::obs {

MetricsRegistry::Entry& MetricsRegistry::get_or_create(std::string_view name,
                                                       Kind kind) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{kind, 0, 0, nullptr,
                                                   nullptr, nullptr})
             .first;
    if (kind == Kind::kHistogram) {
      it->second.hist = std::make_unique<stats::IntHistogram>();
    }
    return it->second;
  }
  // Re-registration is idempotent only for the same kind; a name changing
  // kind (including owned <-> view) means two call sites disagree about
  // what the metric is.
  CLB_CHECK(it->second.kind == kind,
            "metric re-registered with a different kind");
  return it->second;
}

std::uint64_t& MetricsRegistry::counter(std::string_view name) {
  return get_or_create(name, Kind::kCounter).u64;
}

double& MetricsRegistry::gauge(std::string_view name) {
  return get_or_create(name, Kind::kGauge).f64;
}

stats::IntHistogram& MetricsRegistry::histogram(std::string_view name) {
  return *get_or_create(name, Kind::kHistogram).hist;
}

void MetricsRegistry::expose_counter(std::string_view name,
                                     const std::uint64_t* source) {
  CLB_CHECK(source != nullptr, "expose_counter needs a source");
  get_or_create(name, Kind::kCounterView).u64_source = source;
}

void MetricsRegistry::expose_gauge(std::string_view name,
                                   std::function<double()> source) {
  CLB_CHECK(source != nullptr, "expose_gauge needs a source");
  get_or_create(name, Kind::kGaugeView).f64_source = std::move(source);
}

bool MetricsRegistry::contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = entries_.find(name);
  CLB_CHECK(it != entries_.end(), "unknown counter");
  const Entry& e = it->second;
  if (e.kind == Kind::kCounter) return e.u64;
  CLB_CHECK(e.kind == Kind::kCounterView, "metric is not a counter");
  return *e.u64_source;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const auto it = entries_.find(name);
  CLB_CHECK(it != entries_.end(), "unknown gauge");
  const Entry& e = it->second;
  if (e.kind == Kind::kGauge) return e.f64;
  CLB_CHECK(e.kind == Kind::kGaugeView, "metric is not a gauge");
  return e.f64_source();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();

  w.key("counters").begin_object();
  for (const auto& [name, e] : entries_) {
    if (e.kind == Kind::kCounter) {
      w.member(name, e.u64);
    } else if (e.kind == Kind::kCounterView) {
      w.member(name, *e.u64_source);
    }
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, e] : entries_) {
    if (e.kind == Kind::kGauge) {
      w.member(name, e.f64);
    } else if (e.kind == Kind::kGaugeView) {
      w.member(name, e.f64_source());
    }
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, e] : entries_) {
    if (e.kind != Kind::kHistogram) continue;
    const stats::IntHistogram& h = *e.hist;
    w.key(name).begin_object();
    w.member("count", h.total());
    w.member("mean", h.mean());
    w.member("p50", h.quantile(0.50));
    w.member("p90", h.quantile(0.90));
    w.member("p99", h.quantile(0.99));
    w.member("p999", h.quantile(0.999));
    w.member("max", h.max_value());
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.take();
}

bool MetricsRegistry::write_json(const std::string& path) const {
  return write_text_file(path, to_json());
}

}  // namespace clb::obs
