// Event tracing for simulator runs.
//
// The paper's statements are about *events* — phases opening and closing,
// collision-game rounds, id messages finding partners, blocks of tasks
// moving — so the trace layer records exactly those, stamped with the
// simulation step, and flushes them as
//
//   * JSONL (one self-describing object per line, schema in
//     docs/observability.md), and
//   * Chrome trace_event JSON that opens directly in chrome://tracing or
//     Perfetto (phases become duration slices, everything else instants,
//     classification sizes a counter track).
//
// Cost model: tracing must never tax the simulator when it is off.
//   * Compile time: building with -DCLB_TRACE=OFF defines
//     CLB_TRACE_ENABLED=0 and the CLB_TRACE_EVENT macro expands to nothing,
//     so hot paths carry no trace code at all.
//   * Run time: a null sink costs one pointer test (in the macro); a
//     disabled sink one predictable branch; an enabled sink appends 40
//     bytes to a per-thread buffer — no locks on the hot path. High-rate
//     event kinds can additionally be sampled (`sample_every`).
//
// Threading: emit() may be called from any thread (the engine's generation
// pass runs under util/thread_pool). Each thread lazily registers a private
// buffer with the sink (one mutex acquisition per thread per sink, ever);
// snapshot()/writers merge and step-sort the buffers.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

#ifndef CLB_TRACE_ENABLED
#define CLB_TRACE_ENABLED 1
#endif

namespace clb::obs {

enum class EventKind : std::uint8_t {
  kPhaseBegin = 0,     ///< v0 = phase index, v1 = #heavy, v2 = #light
  kPhaseEnd,           ///< v0 = phase index, v1 = matched, v2 = unmatched
  kTreeLevel,          ///< proc = level; v0 = requests, v1 = rounds, v2 = msgs
  kCollisionRound,     ///< proc = round; v0 = active, v1 = queries, v2 = accepts
  kQuery,              ///< proc = src, peer = dst; v0 = phase, v1 = level
  kAccept,             ///< proc = src, peer = dst; v0 = phase, v1 = level
  kIdMessage,          ///< proc = root, peer = partner; v0 = phase, v1 = level
  kTransfer,           ///< proc = from, peer = to; v0 = task count
  kPreroundMatch,      ///< proc = root, peer = partner; v0 = phase
  kBarrierWait,        ///< v0 = wait ns (rt telemetry; one per barrier)
  kMailboxDrain,       ///< v0 = batch size (rt telemetry; one per drain)
  kWorkerStep,         ///< v0 = step ns, v1 = work ns (rt telemetry)
  kKindCount_,         // sentinel, keep last
};

[[nodiscard]] const char* event_kind_name(EventKind kind);

/// Worker-lane kinds render on per-worker Chrome tracks (one lane per
/// worker thread) instead of the per-family tracks; they always carry a
/// meaningful TraceEvent::worker.
[[nodiscard]] constexpr bool event_kind_worker_lane(EventKind kind) {
  return kind == EventKind::kBarrierWait || kind == EventKind::kMailboxDrain ||
         kind == EventKind::kWorkerStep;
}

/// Phase begin/end events are structural (the Chrome writer pairs them into
/// slices) and are therefore exempt from sampling.
[[nodiscard]] constexpr bool event_kind_sampled(EventKind kind) {
  return kind != EventKind::kPhaseBegin && kind != EventKind::kPhaseEnd;
}

struct TraceEvent {
  EventKind kind = EventKind::kPhaseBegin;
  std::uint32_t proc = 0;  ///< primary actor (sender / root / level)
  std::uint32_t peer = 0;  ///< secondary actor (receiver / partner)
  std::uint64_t step = 0;  ///< simulation step the event happened at
  std::uint64_t v0 = 0, v1 = 0, v2 = 0;  ///< kind-specific payload
  /// Emitting worker thread — stamped by emit() from
  /// util::ThreadPool::worker_index(), never by call sites. rt::Runtime
  /// shard threads bind their shard index at spawn, so multi-worker traces
  /// attribute every event (kTransfer, kPhaseBegin/End, the worker-lane
  /// kinds) to the thread that produced it.
  std::uint32_t worker = 0;
};

struct TraceSinkConfig {
  /// Runtime master switch; a disabled sink records nothing.
  bool enabled = true;
  /// Keep every k-th event of the sampled kinds (1 = keep everything).
  /// Applied per thread, so multi-threaded runs sample approximately.
  std::uint32_t sample_every = 1;
};

class TraceSink {
 public:
  explicit TraceSink(TraceSinkConfig cfg = {});

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  [[nodiscard]] bool enabled() const { return cfg_.enabled; }
  void set_enabled(bool on) { cfg_.enabled = on; }
  [[nodiscard]] const TraceSinkConfig& config() const { return cfg_; }

  /// Offset added to every subsequent event's step. Benches that run several
  /// engines into one sink move each run to a disjoint window so phase
  /// slices from different runs never overlap on the trace timeline.
  void set_time_base(std::uint64_t base) { time_base_ = base; }
  [[nodiscard]] std::uint64_t time_base() const { return time_base_; }

  /// Records one event (subject to `enabled` and sampling). Thread-safe.
  void emit(TraceEvent e) {
#if CLB_TRACE_ENABLED
    if (!cfg_.enabled) return;
    e.step += time_base_;
    e.worker = util::ThreadPool::worker_index();
    Buffer& b = local_buffer();
    ++b.seen;
    if (event_kind_sampled(e.kind) && cfg_.sample_every > 1 &&
        b.seen % cfg_.sample_every != 0) {
      return;
    }
    b.events.push_back(e);
#else
    (void)e;
#endif
  }
  void emit(EventKind kind, std::uint64_t step, std::uint32_t proc = 0,
            std::uint32_t peer = 0, std::uint64_t v0 = 0, std::uint64_t v1 = 0,
            std::uint64_t v2 = 0) {
    emit(TraceEvent{kind, proc, peer, step, v0, v1, v2});
  }

  /// Events recorded so far (post-sampling), across all threads.
  [[nodiscard]] std::uint64_t event_count() const;
  /// Events offered to emit() on enabled sinks (pre-sampling).
  [[nodiscard]] std::uint64_t events_seen() const;

  /// All recorded events, merged across threads and sorted by step (ties
  /// keep per-thread emission order).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// One JSON object per line; see docs/observability.md for the schema.
  [[nodiscard]] std::string to_jsonl() const;
  bool write_jsonl(const std::string& path) const;

  /// Chrome trace_event format (the `{"traceEvents": [...]}` object form),
  /// loadable in chrome://tracing and Perfetto.
  [[nodiscard]] std::string to_chrome_trace() const;
  bool write_chrome_trace(const std::string& path) const;

  /// Drops all recorded events (buffers stay registered).
  void clear();

 private:
  struct Buffer {
    std::vector<TraceEvent> events;
    std::uint64_t seen = 0;
  };

  Buffer& local_buffer();

  TraceSinkConfig cfg_;
  std::uint64_t time_base_ = 0;
  std::uint64_t id_;  // process-unique; keys the thread-local buffer cache
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace clb::obs

// Hot-path emission macro: compiles away entirely under -DCLB_TRACE=OFF,
// and costs one null test when the component has no sink attached.
//
//   CLB_TRACE_EVENT(sink_ptr, obs::EventKind::kTransfer, step, from, to, n);
#if CLB_TRACE_ENABLED
#define CLB_TRACE_EVENT(sink, ...)                      \
  do {                                                  \
    ::clb::obs::TraceSink* clb_trace_s_ = (sink);       \
    if (clb_trace_s_ != nullptr && clb_trace_s_->enabled()) \
      clb_trace_s_->emit(__VA_ARGS__);                  \
  } while (0)
#else
#define CLB_TRACE_EVENT(sink, ...) ((void)0)
#endif
