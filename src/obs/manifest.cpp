#include "obs/manifest.hpp"

#include "obs/json.hpp"
#include "obs/trace.hpp"  // CLB_TRACE_ENABLED

// Provenance macros are injected by src/obs/CMakeLists.txt; the fallbacks
// keep non-CMake builds (e.g. single-file compiles) working.
#ifndef CLB_GIT_SHA
#define CLB_GIT_SHA "unknown"
#endif
#ifndef CLB_BUILD_TYPE
#define CLB_BUILD_TYPE "unknown"
#endif
#ifndef CLB_COMPILER_ID
#define CLB_COMPILER_ID "unknown"
#endif

namespace clb::obs {

std::string BuildInfo::git_sha() { return CLB_GIT_SHA; }
std::string BuildInfo::build_type() { return CLB_BUILD_TYPE; }
std::string BuildInfo::compiler() { return CLB_COMPILER_ID; }
bool BuildInfo::trace_compiled() { return CLB_TRACE_ENABLED != 0; }

Manifest::Manifest(std::string tool) : tool_(std::move(tool)) {}

void Manifest::set_command(int argc, char** argv) {
  command_.clear();
  for (int i = 0; i < argc; ++i) command_.emplace_back(argv[i]);
}

void Manifest::set_raw_param(std::string_view name, std::string encoded) {
  for (auto& [n, v] : params_) {
    if (n == name) {
      v = std::move(encoded);
      return;
    }
  }
  params_.emplace_back(std::string(name), std::move(encoded));
}

void Manifest::set_param(std::string_view name, std::uint64_t v) {
  set_raw_param(name, std::to_string(v));
}
void Manifest::set_param(std::string_view name, std::int64_t v) {
  set_raw_param(name, std::to_string(v));
}
void Manifest::set_param(std::string_view name, double v) {
  JsonWriter w;
  w.value(v);
  set_raw_param(name, w.take());
}
void Manifest::set_param(std::string_view name, bool v) {
  set_raw_param(name, v ? "true" : "false");
}
void Manifest::set_param(std::string_view name, std::string_view v) {
  std::string encoded;
  json_append_escaped(encoded, v);
  set_raw_param(name, std::move(encoded));
}

void Manifest::add_output(std::string_view kind, std::string_view path) {
  outputs_.emplace_back(std::string(kind), std::string(path));
}

std::string Manifest::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.member("schema", "clb.run.v1");
  w.member("tool", tool_);

  w.key("command").begin_array();
  for (const std::string& arg : command_) w.value(arg);
  w.end_array();

  if (has_seed_) w.member("seed", seed_);

  w.key("build").begin_object();
  w.member("git_sha", BuildInfo::git_sha());
  w.member("type", BuildInfo::build_type());
  w.member("compiler", BuildInfo::compiler());
  w.member("trace_compiled", BuildInfo::trace_compiled());
  w.end_object();

  w.key("params").begin_object();
  for (const auto& [name, encoded] : params_) w.key(name).raw(encoded);
  w.end_object();

  w.key("outputs").begin_array();
  for (const auto& [kind, path] : outputs_) {
    w.begin_object();
    w.member("kind", kind);
    w.member("path", path);
    w.end_object();
  }
  w.end_array();

  if (wall_seconds_ >= 0) w.member("wall_seconds", wall_seconds_);

  w.end_object();
  return w.take();
}

bool Manifest::write(const std::string& path) const {
  return write_text_file(path, to_json());
}

}  // namespace clb::obs
