// One-stop observability bundle for a run: owns a TraceSink, a
// MetricsRegistry and a Manifest, knows the requested output paths, and
// writes everything in finish().
//
// Benches construct one Recorder from their --trace/--metrics-json/
// --manifest flags (bench::ObsFlags), hand `trace()` to the engine and
// balancer configs, record parameters into `manifest()`, and call finish()
// before exiting. Components never know about paths; the Recorder never
// knows about protocol internals.
//
// Path conventions: --trace=PATH writes the Chrome trace at PATH and the
// JSONL twin next to it (PATH with its extension swapped to .jsonl). The
// manifest lists every file actually written.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace clb::obs {

struct RecorderConfig {
  std::string tool;                  ///< manifest tool name
  std::vector<std::string> command;  ///< full argv for replay
  std::string trace_path;            ///< "" = tracing off
  std::string metrics_path;          ///< "" = no metrics file
  std::string manifest_path;         ///< "" = no manifest
  std::uint32_t trace_sample = 1;    ///< TraceSinkConfig::sample_every
};

/// PATH with its extension swapped to .jsonl ("runs/a.json" -> "runs/a.jsonl",
/// "trace" -> "trace.jsonl").
[[nodiscard]] std::string jsonl_sibling(const std::string& path);

class Recorder {
 public:
  explicit Recorder(RecorderConfig cfg);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// The sink to wire into Engine/balancer configs. Always non-null; it is
  /// enabled iff a trace path was requested, so callers can pass it along
  /// unconditionally.
  [[nodiscard]] TraceSink* trace() { return &sink_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] Manifest& manifest() { return manifest_; }

  /// True when any output file was requested.
  [[nodiscard]] bool active() const;

  /// Writes every requested output (trace JSONL + Chrome, metrics JSON,
  /// manifest JSON — manifest last so it can list the others) and stamps
  /// wall time. Idempotent; returns false if any write failed.
  bool finish();

 private:
  RecorderConfig cfg_;
  TraceSink sink_;
  MetricsRegistry metrics_;
  Manifest manifest_;
  util::Stopwatch watch_;
  bool finished_ = false;
};

}  // namespace clb::obs
