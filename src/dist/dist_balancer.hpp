// Distributed implementation of the paper's balancing algorithm.
//
// Where core::ThresholdBalancer executes the protocol as an oracle (one
// pass over global state per phase — the analytical model), this version
// runs it the way a real machine would: per-processor protocol state
// machines exchanging Query / Accept / Forward / Id / Transfer messages
// through a fixed-latency Network. Consequences faithfully modelled:
//
//   * a collision round takes 2 * latency steps (query out, accept back);
//   * rejection is a timeout — an overloaded target answers nothing and
//     requesters re-send after the round trip (Figure 1's "no new random
//     choices" rule applies: the a targets are fixed per request);
//   * a processor accepts at most c queries per *phase* (Lemma 1's
//     assignment property);
//   * task movement itself rides a message, so a transfer lands
//     latency steps after the boss learns of its partner, against the
//     sender's queue as it is then;
//   * a phase completes when every request has resolved and the fabric has
//     drained; the next classification happens `phase_gap` steps later.
//     Phases therefore have *variable* length (the paper's fixed T/16 slots
//     are an analytical device; see Concluding Remarks).
//
// Generation and consumption continue every step while the protocol runs,
// so classification staleness grows with latency — EXP-19 measures exactly
// that effect.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/params.hpp"
#include "dist/network.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "sim/balancer.hpp"
#include "stats/moments.hpp"

namespace clb::dist {

struct DistConfig {
  core::PhaseParams params;
  std::uint32_t a = 5;
  std::uint32_t b = 2;
  std::uint32_t c = 1;
  /// Message latency in steps (>= 1). With `topology` set this is the
  /// per-hop latency and each message takes latency * hops(src, dst) steps.
  std::uint32_t latency = 1;
  /// Optional machine graph (borrowed; must outlive the balancer). Null =
  /// the paper's any-to-any model with uniform latency.
  const net::Topology* topology = nullptr;
  /// Link-model knobs (heterogeneous per-link jitter, bandwidth caps,
  /// loss + retransmit), keyed off the engine seed. Defaults are the exact
  /// uniform/lossless degenerate case.
  net::NetConfig link{};
  /// Idle steps between phase completion and the next classification.
  std::uint64_t phase_gap = 1;
  /// Failsafe phase duration; 0 derives a generous bound from depth, the
  /// Lemma 1 round budget and the latency.
  std::uint64_t max_phase_steps = 0;
  /// Optional event-trace sink (borrowed): phase begin/end plus one event
  /// per Query/Accept/Id actually put on the fabric (sampled under the
  /// sink's sample_every — these are the high-rate kinds).
  obs::TraceSink* trace = nullptr;
};

/// One completed phase, for cross-validation (rt's latency mode must
/// reproduce this record exactly, phase by phase).
struct DistPhaseRecord {
  std::uint64_t phase_index = 0;
  std::uint64_t start_step = 0;
  std::uint64_t end_step = 0;
  std::uint64_t num_heavy = 0;
  std::uint64_t matched = 0;
  std::uint64_t unmatched = 0;
  bool forced = false;
};

struct DistStats {
  std::uint64_t phases = 0;
  std::uint64_t matched = 0;
  std::uint64_t unmatched = 0;
  std::uint64_t failed_requests = 0;
  std::uint64_t forced_phase_ends = 0;
  stats::OnlineMoments phase_duration;   // steps per completed phase
  stats::OnlineMoments heavy_per_phase;
  std::vector<DistPhaseRecord> phase_log;
};

class DistThresholdBalancer final : public sim::Balancer {
 public:
  explicit DistThresholdBalancer(DistConfig cfg);

  [[nodiscard]] std::string name() const override { return "dist-threshold"; }
  void on_step(sim::Engine& engine) override;
  void on_reset(sim::Engine& engine) override;

  [[nodiscard]] const DistStats& stats() const { return stats_; }
  [[nodiscard]] const DistConfig& config() const { return cfg_; }
  [[nodiscard]] const Network& network() const { return *net_; }

 private:
  static constexpr std::uint32_t kMaxA = 8;

  struct Request {
    std::uint32_t targets[kMaxA] = {};
    std::uint32_t root = 0;
    std::uint64_t act_step = 0;  ///< activation step (canonical seq major)
    std::uint64_t await_until = 0;
    std::uint8_t accepted_mask = 0;
    std::uint8_t accept_count = 0;
    std::uint8_t round = 1;
    std::uint8_t level = 1;
    // First b accepted children and their applicative flags.
    std::uint32_t child[2] = {};
    bool child_applicative[2] = {false, false};
    bool active = false;
  };

  void start_phase(sim::Engine& engine);
  void finish_phase(sim::Engine& engine, bool forced);
  void start_request(sim::Engine& engine, std::uint32_t proc,
                     std::uint32_t root, std::uint32_t level);
  void send_pending_queries(sim::Engine& engine, std::uint32_t proc);
  void handle_deliveries(sim::Engine& engine);
  void handle_query_batch(sim::Engine& engine, std::uint32_t target,
                          const Message* msgs, std::size_t count);
  void evaluate_requests(sim::Engine& engine);

  // Stamped per-phase processor state.
  [[nodiscard]] bool light_at_phase_start(std::uint32_t p) const {
    return light_stamp_[p] == epoch_;
  }
  [[nodiscard]] bool assigned(std::uint32_t p) const {
    return assign_stamp_[p] == epoch_;
  }
  void set_assigned(std::uint32_t p) { assign_stamp_[p] = epoch_; }
  [[nodiscard]] bool matched(std::uint32_t root) const {
    return matched_stamp_[root] == epoch_;
  }
  [[nodiscard]] std::uint32_t accepted_count(std::uint32_t p) const {
    return accept_stamp_[p] == epoch_ ? accept_cnt_[p] : 0;
  }
  void add_accepted(std::uint32_t p, std::uint32_t k) {
    if (accept_stamp_[p] != epoch_) {
      accept_stamp_[p] = epoch_;
      accept_cnt_[p] = 0;
    }
    accept_cnt_[p] += k;
  }

  /// Stamps `m.seq` from the current send context and bumps the minor
  /// counter, then puts the message on the fabric.
  void send_seq(Message m, std::uint64_t now);

  DistConfig cfg_;
  std::uint32_t round_budget_ = 0;   // Lemma 1 rounds per level
  std::uint64_t max_phase_steps_ = 0;

  // Canonical send context (see net/delivery.hpp): set before each
  // processing unit, consumed by send_seq.
  net::SendStage seq_stage_ = net::SendStage::kDeliver;
  std::uint64_t seq_major_ = 0;
  std::uint32_t seq_minor_ = 0;

  std::unique_ptr<Network> net_;
  DistStats stats_;

  enum class PhaseState { kIdle, kRunning } phase_state_ = PhaseState::kIdle;
  std::uint64_t phase_index_ = 0;
  std::uint64_t phase_start_step_ = 0;
  std::uint64_t next_phase_step_ = 0;

  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> light_stamp_;
  std::vector<std::uint32_t> assign_stamp_;
  std::vector<std::uint32_t> matched_stamp_;
  std::vector<std::uint32_t> accept_stamp_;
  std::vector<std::uint32_t> accept_cnt_;

  std::vector<Request> req_;
  std::vector<std::uint32_t> active_list_;
  std::vector<std::uint32_t> heavy_;
  std::vector<Message> query_batch_;
};

}  // namespace clb::dist
