#include "dist/dist_balancer.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/bounds.hpp"
#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"

namespace clb::dist {

DistThresholdBalancer::DistThresholdBalancer(DistConfig cfg) : cfg_(cfg) {
  CLB_CHECK(cfg_.a >= 2 && cfg_.a <= kMaxA, "dist: a in [2, 8]");
  CLB_CHECK(cfg_.b >= 1 && cfg_.b <= 2, "dist: binary trees need b in [1, 2]");
  CLB_CHECK(cfg_.c >= 1, "dist: c >= 1");
  CLB_CHECK(cfg_.latency >= 1, "dist: latency >= 1");
  CLB_CHECK(static_cast<std::uint64_t>(cfg_.c) * (cfg_.a - cfg_.b) >= 2,
            "dist: round bound needs c(a-b) >= 2");
}

void DistThresholdBalancer::on_reset(sim::Engine& engine) {
  const std::uint64_t n = engine.n();
  CLB_CHECK(n == cfg_.params.n, "dist balancer parameterised for different n");
  round_budget_ = static_cast<std::uint32_t>(std::ceil(
      analysis::collision_round_bound(n, cfg_.a, cfg_.b, cfg_.c)));
  net_ = std::make_unique<Network>(n, cfg_.latency, cfg_.topology, cfg_.link,
                                   engine.seed());
  max_phase_steps_ = cfg_.max_phase_steps;
  if (max_phase_steps_ == 0) {
    // depth levels x round budget x a worst-case round trip, with 4x slack
    // plus the trailing transfer hop; the shared helper folds in the link
    // model's worst-case retransmit schedule so both fabrics agree.
    max_phase_steps_ =
        net::phase_failsafe(cfg_.params.tree_depth, round_budget_,
                            net_->max_delay(), net_->worst_extra());
  }
  stats_ = DistStats{};
  phase_state_ = PhaseState::kIdle;
  phase_index_ = 0;
  next_phase_step_ = 0;
  epoch_ = 0;
  light_stamp_.assign(n, 0);
  assign_stamp_.assign(n, 0);
  matched_stamp_.assign(n, 0);
  accept_stamp_.assign(n, 0);
  accept_cnt_.assign(n, 0);
  req_.assign(n, Request{});
  active_list_.clear();
  heavy_.clear();
}

void DistThresholdBalancer::send_seq(Message m, std::uint64_t now) {
  m.seq = net::SeqKey{now, seq_stage_, seq_major_, seq_minor_++};
  net_->send(m, now);
}

void DistThresholdBalancer::on_step(sim::Engine& engine) {
  handle_deliveries(engine);
  evaluate_requests(engine);
  if (phase_state_ == PhaseState::kRunning) {
    const bool drained = active_list_.empty() && net_->in_flight() == 0;
    const bool overdue =
        engine.step() - phase_start_step_ >= max_phase_steps_;
    if (drained || overdue) finish_phase(engine, overdue && !drained);
  }
  if (phase_state_ == PhaseState::kIdle && engine.step() >= next_phase_step_) {
    start_phase(engine);
  }
}

void DistThresholdBalancer::start_phase(sim::Engine& engine) {
  const std::uint64_t n = engine.n();
  const core::PhaseParams& pp = cfg_.params;
  if (epoch_ == 0xFFFFFFFFu) {
    light_stamp_.assign(n, 0);
    assign_stamp_.assign(n, 0);
    matched_stamp_.assign(n, 0);
    accept_stamp_.assign(n, 0);
    epoch_ = 0;
  }
  ++epoch_;
  phase_state_ = PhaseState::kRunning;
  phase_start_step_ = engine.step();
  ++phase_index_;

  heavy_.clear();
  [[maybe_unused]] std::uint64_t num_light = 0;
  for (std::uint64_t p = 0; p < n; ++p) {
    const std::uint64_t load = engine.load(p);
    if (load >= pp.heavy_threshold) {
      heavy_.push_back(static_cast<std::uint32_t>(p));
    } else if (load <= pp.light_threshold) {
      light_stamp_[p] = epoch_;
      ++num_light;
    }
  }
  stats_.heavy_per_phase.add(static_cast<double>(heavy_.size()));
  CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kPhaseBegin, engine.step(), 0, 0,
                  phase_index_, heavy_.size(), num_light);
  for (const std::uint32_t h : heavy_) {
    engine.note_balance_initiation(h);
    seq_stage_ = net::SendStage::kPhaseStart;
    seq_major_ = h;
    seq_minor_ = 0;
    start_request(engine, h, h, 1);
  }
}

void DistThresholdBalancer::start_request(sim::Engine& engine,
                                          std::uint32_t proc,
                                          std::uint32_t root,
                                          std::uint32_t level) {
  Request& r = req_[proc];
  CLB_DCHECK(!r.active, "processor already runs a request this phase");
  r = Request{};
  r.root = root;
  r.act_step = engine.step();
  r.level = static_cast<std::uint8_t>(level);
  r.active = true;
  // Fixed i.u.a.r. target set, excluding self (Figure 1: no new random
  // choices in later rounds).
  rng::CounterRng rng(engine.seed(),
                      rng::hash_combine(net::kDistTargetSalt,
                                        rng::hash_combine(proc, level)),
                      phase_index_);
  const std::uint64_t n = engine.n();
  for (std::uint32_t j = 0; j < cfg_.a; ++j) {
    for (;;) {
      const auto cand = static_cast<std::uint32_t>(rng::bounded(rng, n));
      if (cand == proc) continue;
      bool dup = false;
      for (std::uint32_t k = 0; k < j; ++k) {
        if (r.targets[k] == cand) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        r.targets[j] = cand;
        break;
      }
    }
  }
  active_list_.push_back(proc);
  send_pending_queries(engine, proc);
}

void DistThresholdBalancer::send_pending_queries(sim::Engine& engine,
                                                 std::uint32_t proc) {
  Request& r = req_[proc];
  auto& msg = engine.mutable_messages();
  // The round ends when the slowest outstanding target could have replied.
  std::uint64_t worst_delay = 1;
  for (std::uint32_t j = 0; j < cfg_.a; ++j) {
    if (r.accepted_mask & (1u << j)) continue;
    send_seq(Message{MsgKind::kQuery, proc, r.targets[j], r.root, r.level},
             engine.step());
    ++msg.queries;
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kQuery, engine.step(), proc,
                    r.targets[j], phase_index_, r.level);
    worst_delay = std::max(worst_delay, net_->delay(proc, r.targets[j]));
  }
  r.await_until = engine.step() + 2ULL * worst_delay;
}

void DistThresholdBalancer::handle_query_batch(sim::Engine& engine,
                                               std::uint32_t target,
                                               const Message* msgs,
                                               std::size_t count) {
  // Collision rule: answer all queries of this step iff they fit within the
  // remaining per-phase capacity c; otherwise answer none (the requesters
  // time out and retry).
  const std::uint32_t already = accepted_count(target);
  if (count > cfg_.c || already + count > cfg_.c) return;
  add_accepted(target, static_cast<std::uint32_t>(count));
  auto& mc = engine.mutable_messages();
  for (std::size_t i = 0; i < count; ++i) {
    const Message& q = msgs[i];
    bool applicative = false;
    if (light_at_phase_start(target) && !assigned(target)) {
      applicative = true;
      set_assigned(target);
      // Announce directly to the boss (its id rode in the query).
      send_seq(Message{MsgKind::kId, target, q.payload_a, 0, 0},
               engine.step());
      ++mc.id_messages;
      CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kIdMessage, engine.step(),
                      q.payload_a, target, phase_index_, q.payload_b);
    }
    send_seq(Message{MsgKind::kAccept, target, q.from, q.payload_a,
                     applicative ? 1u : 0u},
             engine.step());
    ++mc.accepts;
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kAccept, engine.step(), target,
                    q.from, phase_index_, q.payload_b);
  }
}

void DistThresholdBalancer::handle_deliveries(sim::Engine& engine) {
  const auto& due = net_->deliver(engine.step());
  auto& mc = engine.mutable_messages();
  std::size_t i = 0;
  while (i < due.size()) {
    const std::uint32_t recipient = due[i].to;
    seq_stage_ = net::SendStage::kDeliver;
    seq_major_ = recipient;
    seq_minor_ = 0;
    query_batch_.clear();
    std::size_t j = i;
    for (; j < due.size() && due[j].to == recipient; ++j) {
      const Message& m = due[j];
      switch (m.kind) {
        case MsgKind::kQuery:
          query_batch_.push_back(m);
          break;
        case MsgKind::kAccept: {
          Request& r = req_[recipient];
          if (!r.active) break;  // stale accept after request resolved
          for (std::uint32_t t = 0; t < cfg_.a; ++t) {
            if (r.targets[t] == m.from && !(r.accepted_mask & (1u << t))) {
              r.accepted_mask |= (1u << t);
              if (r.accept_count < 2) {
                r.child[r.accept_count] = m.from;
                r.child_applicative[r.accept_count] = m.payload_b != 0;
              }
              ++r.accept_count;
              break;
            }
          }
          break;
        }
        case MsgKind::kId: {
          if (!matched(recipient)) {
            matched_stamp_[recipient] = epoch_;
            // Ship the block; the payload lands `latency` steps from now.
            send_seq(Message{MsgKind::kTransfer, recipient, m.from,
                             cfg_.params.transfer_amount, 0},
                     engine.step());
          }
          break;
        }
        case MsgKind::kTransfer:
          engine.schedule_transfer(m.from, m.to, m.payload_a);
          break;
        case MsgKind::kForward:
          if (!req_[recipient].active) {
            start_request(engine, recipient, m.payload_a, m.payload_b);
          }
          ++mc.control;
          break;
        case MsgKind::kPreround:
          break;  // not used by this implementation
      }
    }
    if (!query_batch_.empty()) {
      handle_query_batch(engine, recipient, query_batch_.data(),
                         query_batch_.size());
    }
    i = j;
  }
}

void DistThresholdBalancer::evaluate_requests(sim::Engine& engine) {
  const std::uint64_t now = engine.step();
  std::size_t w = 0;
  for (std::size_t idx = 0; idx < active_list_.size(); ++idx) {
    const std::uint32_t proc = active_list_[idx];
    Request& r = req_[proc];
    if (!r.active) continue;  // resolved elsewhere (defensive)
    if (now < r.await_until) {
      active_list_[w++] = proc;
      continue;
    }
    seq_stage_ = net::SendStage::kEvaluate;
    seq_major_ = net::evaluate_major(r.act_step, proc);
    seq_minor_ = 0;
    if (r.accept_count >= cfg_.b) {
      // Request complete. Applicative children already announced
      // themselves; a fully non-applicative pair forwards the search
      // (sibling rule, coordinated via this parent).
      const std::uint32_t kids = std::min<std::uint32_t>(r.accept_count, 2);
      bool any_applicative = false;
      for (std::uint32_t k = 0; k < kids; ++k) {
        any_applicative |= r.child_applicative[k];
      }
      if (!any_applicative && r.level < cfg_.params.tree_depth) {
        for (std::uint32_t k = 0; k < kids; ++k) {
          send_seq(Message{MsgKind::kForward, proc, r.child[k], r.root,
                           static_cast<std::uint32_t>(r.level + 1)},
                   now);
        }
      }
      r.active = false;
    } else if (r.round < round_budget_) {
      ++r.round;
      send_pending_queries(engine, proc);
      active_list_[w++] = proc;
    } else {
      ++stats_.failed_requests;
      r.active = false;
    }
  }
  active_list_.resize(w);
}

void DistThresholdBalancer::finish_phase(sim::Engine& engine, bool forced) {
  // Cold path: always-on conservation check, one O(n) scan per phase.
  engine.check_conservation();
  ++stats_.phases;
  if (forced) {
    ++stats_.forced_phase_ends;
    // Abort outstanding work so the next phase starts clean.
    for (const std::uint32_t proc : active_list_) req_[proc].active = false;
    active_list_.clear();
    net_->reset();
  }
  std::uint64_t phase_matched = 0;
  std::uint64_t phase_unmatched = 0;
  for (const std::uint32_t h : heavy_) {
    if (matched(h)) {
      ++stats_.matched;
      ++phase_matched;
    } else {
      ++stats_.unmatched;
      ++phase_unmatched;
    }
  }
  stats_.phase_duration.add(
      static_cast<double>(engine.step() - phase_start_step_));
  stats_.phase_log.push_back(DistPhaseRecord{
      phase_index_, phase_start_step_, engine.step(), heavy_.size(),
      phase_matched, phase_unmatched, forced});
  CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kPhaseEnd, engine.step(), 0, 0,
                  phase_index_, phase_matched, phase_unmatched);
  phase_state_ = PhaseState::kIdle;
  next_phase_step_ = engine.step() + cfg_.phase_gap;
}

}  // namespace clb::dist
