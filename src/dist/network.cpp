#include "dist/network.hpp"

#include <algorithm>

namespace clb::dist {

Network::Network(std::uint64_t n, std::uint32_t latency)
    : n_(n), latency_(latency) {
  CLB_CHECK(latency_ >= 1, "network latency must be >= 1 step");
  max_delay_ = latency_;
  slots_.resize(max_delay_ + 1);
}

Network::Network(std::uint64_t n, std::uint32_t latency_per_hop,
                 const net::Topology* topology)
    : n_(n), latency_(latency_per_hop), topology_(topology) {
  CLB_CHECK(latency_ >= 1, "per-hop latency must be >= 1 step");
  CLB_CHECK(topology_ != nullptr && topology_->n() == n,
            "topology must cover all n processors");
  max_delay_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(latency_) * topology_->diameter());
  slots_.resize(max_delay_ + 1);
}

std::uint64_t Network::delay(std::uint32_t from, std::uint32_t to) const {
  if (topology_ == nullptr) return latency_;
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(latency_) * topology_->hops(from, to));
}

void Network::send(const Message& m, std::uint64_t now) {
  CLB_DCHECK(m.to < n_ && m.from < n_, "message endpoint out of range");
  slots_[(now + delay(m.from, m.to)) % slots_.size()].push_back(m);
  ++in_flight_;
  ++total_sent_;
  total_hops_ += topology_ ? topology_->hops(m.from, m.to) : 1;
}

const std::vector<Message>& Network::deliver(std::uint64_t now) {
  auto& slot = slots_[now % slots_.size()];
  due_.clear();
  due_.swap(slot);
  in_flight_ -= due_.size();
  // Group by recipient, keeping send order within a recipient.
  std::stable_sort(due_.begin(), due_.end(),
                   [](const Message& a, const Message& b) {
                     return a.to < b.to;
                   });
  return due_;
}

void Network::reset() {
  for (auto& slot : slots_) slot.clear();
  due_.clear();
  in_flight_ = 0;
}

}  // namespace clb::dist
