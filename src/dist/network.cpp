#include "dist/network.hpp"

namespace clb::dist {

namespace {
net::DeliveryPolicy make_policy(std::uint64_t n, std::uint32_t latency,
                                const net::Topology* topology,
                                std::uint32_t jitter, std::uint64_t seed) {
  if (topology != nullptr) {
    return net::DeliveryPolicy(n, latency, topology, jitter, seed);
  }
  return net::DeliveryPolicy(n, latency, jitter, seed);
}
}  // namespace

Network::Network(std::uint64_t n, std::uint32_t latency,
                 const net::Topology* topology, const net::NetConfig& link,
                 std::uint64_t run_seed)
    : policy_(make_policy(n, latency, topology, link.jitter, run_seed)),
      fabric_(policy_.max_delay()) {
  links_.configure(link, run_seed, policy_.max_delay());
}

void Network::send(const Message& m, std::uint64_t now) {
  CLB_DCHECK(m.to < policy_.n() && m.from < policy_.n(),
             "message endpoint out of range");
  const net::SendPlan plan =
      links_.plan(m.from, m.to, now, policy_.delay(m.from, m.to));
  fabric_.file(now, plan.due, m);
  if (fabric_.pending() > max_in_flight_) max_in_flight_ = fabric_.pending();
  total_hops_ += policy_.hops(m.from, m.to);
}

const std::vector<Message>& Network::deliver(std::uint64_t now) {
  due_.clear();
  flight_sum_ += fabric_.pending();  // depth this step, before removal
  ++deliver_calls_;
  fabric_.take_due(now, due_);
  net::sort_due_batch(
      due_, [](const Message& m) { return m.to; },
      [](const Message& m) -> const net::SeqKey& { return m.seq; },
      /*canonical=*/true);
  return due_;
}

void Network::reset() {
  fabric_.discard_pending([](Message&) {});
  links_.reset();
  due_.clear();
  // Cumulative stats (sent/hops/delivered/depth) survive the reset on
  // purpose: a forced phase end discards messages, it does not unsend them.
}

}  // namespace clb::dist
