#include "dist/network.hpp"

#include <algorithm>

namespace clb::dist {

void Network::send(const Message& m, std::uint64_t now) {
  CLB_DCHECK(m.to < policy_.n() && m.from < policy_.n(),
             "message endpoint out of range");
  slots_[(now + policy_.delay(m.from, m.to)) % slots_.size()].push_back(m);
  ++in_flight_;
  if (in_flight_ > max_in_flight_) max_in_flight_ = in_flight_;
  ++total_sent_;
  total_hops_ += policy_.hops(m.from, m.to);
}

const std::vector<Message>& Network::deliver(std::uint64_t now) {
  auto& slot = slots_[now % slots_.size()];
  due_.clear();
  due_.swap(slot);
  flight_sum_ += in_flight_;  // depth this step, before removal
  ++deliver_calls_;
  in_flight_ -= due_.size();
  total_delivered_ += due_.size();
  // Group by recipient; within a recipient the canonical seq stamp orders
  // processing (stable, so unstamped messages keep their send order).
  std::stable_sort(due_.begin(), due_.end(),
                   [](const Message& a, const Message& b) {
                     if (a.to != b.to) return a.to < b.to;
                     return a.seq < b.seq;
                   });
  return due_;
}

void Network::reset() {
  for (auto& slot : slots_) slot.clear();
  due_.clear();
  in_flight_ = 0;
  // Cumulative stats (sent/hops/delivered/depth) survive the reset on
  // purpose: a forced phase end discards messages, it does not unsend them.
}

}  // namespace clb::dist
