// Message-passing substrate for the distributed protocol implementation.
//
// Since PR 7 this is a thin adapter over the unified delay-queue fabric
// (net/fabric.hpp): delivery timing comes from the shared
// net::DeliveryPolicy (uniform latency, per-hop Topology routing, seeded
// per-link jitter) plus the net::LinkModel (bandwidth caps, loss +
// retransmit), the future-step ring is a net::Fabric<Message>, and the
// per-step batch order is the shared canonical (recipient, net::SeqKey)
// sort — the exact same code the concurrent runtime's per-worker queues
// run, so the serial fabric is the 1-worker degenerate case by
// construction, not by discipline.
#pragma once

#include <cstdint>
#include <vector>

#include "net/delivery.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "util/check.hpp"

namespace clb::dist {

/// Protocol message kinds (Figures 1 and 2, plus the §4.3 pre-round).
enum class MsgKind : std::uint8_t {
  kQuery,     ///< collision-game query; root/level in payload
  kAccept,    ///< target accepted the query; applicative flag in payload
  kForward,   ///< parent tells a non-applicative pair to keep searching
  kId,        ///< applicative processor announces itself to the boss
  kTransfer,  ///< boss ships `payload_a` tasks to the partner
  kPreround,  ///< §4.3 one-shot request
};

struct Message {
  MsgKind kind = MsgKind::kQuery;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t payload_a = 0;  ///< root id / task count
  std::uint32_t payload_b = 0;  ///< level / applicative flag
  net::SeqKey seq{};            ///< canonical send position (see delivery.hpp)
};

/// Delivery adapter over net::Fabric + net::LinkModel. Owns no event loop
/// of its own: send() asks the link model when the message matures and
/// files it; deliver() takes the due batch and imposes the canonical order.
class Network {
 public:
  /// Uniform-latency fabric (the paper's any-to-any machine).
  Network(std::uint64_t n, std::uint32_t latency)
      : Network(n, latency, nullptr, net::NetConfig{}, 0) {}
  /// Topology-routed fabric: `latency` is the per-hop delay. The topology
  /// is borrowed and must outlive the network.
  Network(std::uint64_t n, std::uint32_t latency_per_hop,
          const net::Topology* topology)
      : Network(n, latency_per_hop, topology, net::NetConfig{}, 0) {}
  /// Full link model: heterogeneous per-link jitter, bandwidth caps and
  /// loss/retransmit, all keyed deterministically off `run_seed`.
  Network(std::uint64_t n, std::uint32_t latency,
          const net::Topology* topology, const net::NetConfig& link,
          std::uint64_t run_seed);

  [[nodiscard]] const net::DeliveryPolicy& policy() const { return policy_; }
  [[nodiscard]] std::uint32_t latency() const { return policy_.latency(); }
  [[nodiscard]] const net::Topology* topology() const {
    return policy_.topology();
  }
  [[nodiscard]] std::uint64_t in_flight() const { return fabric_.pending(); }
  [[nodiscard]] std::uint64_t total_sent() const { return fabric_.filed(); }
  /// Cumulative link traversals of all sent messages.
  [[nodiscard]] std::uint64_t total_hops() const { return total_hops_; }
  /// Messages handed over by deliver() so far (in_flight + delivered ==
  /// sent, except across reset() which drops the in-flight ones).
  [[nodiscard]] std::uint64_t total_delivered() const {
    return fabric_.matured();
  }
  /// Peak delivery-queue depth: max in_flight observed right after a send.
  [[nodiscard]] std::uint64_t max_in_flight() const { return max_in_flight_; }
  /// Mean in_flight sampled at each deliver() call (before removal) — the
  /// per-step fabric depth, comparable to the rt latency fabric's
  /// fabric_mean_in_flight telemetry gauge.
  [[nodiscard]] double mean_in_flight() const {
    return deliver_calls_ == 0
               ? 0.0
               : static_cast<double>(flight_sum_) /
                     static_cast<double>(deliver_calls_);
  }

  /// Link-model stats (all zero on an unshaped fabric).
  [[nodiscard]] const net::NetConfig& link_config() const {
    return links_.config();
  }
  [[nodiscard]] std::uint64_t retransmits() const {
    return links_.retransmits();
  }
  [[nodiscard]] std::uint64_t dup_suppressed() const {
    return links_.dup_suppressed();
  }
  [[nodiscard]] std::uint64_t link_queued_delay() const {
    return links_.queued_delay();
  }
  /// Worst-case delay beyond the wire a retransmit schedule can add
  /// (sizes the forced-end failsafe, see net::phase_failsafe).
  [[nodiscard]] std::uint64_t worst_extra() const {
    return links_.worst_extra();
  }

  /// Delivery delay for a (src, dst) pair under the current mode.
  [[nodiscard]] std::uint64_t delay(std::uint32_t from,
                                    std::uint32_t to) const {
    return policy_.delay(from, to);
  }
  /// Worst-case wire delay over any pair (sizes timeouts).
  [[nodiscard]] std::uint64_t max_delay() const { return policy_.max_delay(); }

  /// Queues `m` for delivery at the step the link model decides (wire delay
  /// plus queueing and retransmit schedule; `now + delay(from, to)` on an
  /// unshaped fabric).
  void send(const Message& m, std::uint64_t now);

  /// Returns all messages due at `now`, sorted by (recipient, seq), and
  /// removes them from the fabric. The returned reference is valid until
  /// the next call.
  const std::vector<Message>& deliver(std::uint64_t now);

  void reset();

 private:
  net::DeliveryPolicy policy_;
  net::LinkModel links_;
  net::Fabric<Message> fabric_;
  std::vector<Message> due_;
  std::uint64_t total_hops_ = 0;
  std::uint64_t max_in_flight_ = 0;
  std::uint64_t flight_sum_ = 0;      // sum of in_flight at deliver() calls
  std::uint64_t deliver_calls_ = 0;
};

}  // namespace clb::dist
