// Message-passing substrate for the distributed protocol implementation.
//
// Messages sent at step t are delivered at step t + latency. Delivery order
// is deterministic: messages due at the same step are handed over grouped
// by recipient, in (recipient, send order) order, so protocol runs replay
// bit-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "util/check.hpp"

namespace clb::dist {

/// Protocol message kinds (Figures 1 and 2, plus the §4.3 pre-round).
enum class MsgKind : std::uint8_t {
  kQuery,     ///< collision-game query; root/level in payload
  kAccept,    ///< target accepted the query; applicative flag in payload
  kForward,   ///< parent tells a non-applicative pair to keep searching
  kId,        ///< applicative processor announces itself to the boss
  kTransfer,  ///< boss ships `payload_a` tasks to the partner
  kPreround,  ///< §4.3 one-shot request
};

struct Message {
  MsgKind kind = MsgKind::kQuery;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t payload_a = 0;  ///< root id / task count
  std::uint32_t payload_b = 0;  ///< level / applicative flag
};

/// Delivery fabric. Uniform mode: every message takes `latency` steps.
/// Topology mode: a message from src to dst takes
/// `max(1, latency * topology->hops(src, dst))` steps — per-hop latency on
/// a concrete machine graph. Ring buffer of `max_delay + 1` step slots.
class Network {
 public:
  /// Uniform-latency fabric (the paper's any-to-any machine).
  Network(std::uint64_t n, std::uint32_t latency);
  /// Topology-routed fabric: `latency` is the per-hop delay. The topology
  /// is borrowed and must outlive the network.
  Network(std::uint64_t n, std::uint32_t latency_per_hop,
          const net::Topology* topology);

  [[nodiscard]] std::uint32_t latency() const { return latency_; }
  [[nodiscard]] const net::Topology* topology() const { return topology_; }
  [[nodiscard]] std::uint64_t in_flight() const { return in_flight_; }
  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }
  /// Cumulative link traversals of all sent messages.
  [[nodiscard]] std::uint64_t total_hops() const { return total_hops_; }

  /// Delivery delay for a (src, dst) pair under the current mode.
  [[nodiscard]] std::uint64_t delay(std::uint32_t from,
                                    std::uint32_t to) const;
  /// Worst-case delay over any pair (sizes timeouts).
  [[nodiscard]] std::uint64_t max_delay() const { return max_delay_; }

  /// Queues `m` for delivery at `now + delay(m.from, m.to)`.
  void send(const Message& m, std::uint64_t now);

  /// Returns all messages due at `now`, sorted by (recipient, send order),
  /// and removes them from the fabric. The returned reference is valid
  /// until the next call.
  const std::vector<Message>& deliver(std::uint64_t now);

  void reset();

 private:
  std::uint64_t n_;
  std::uint32_t latency_;
  const net::Topology* topology_ = nullptr;
  std::uint64_t max_delay_ = 1;
  std::vector<std::vector<Message>> slots_;  // index: step % slots
  std::vector<Message> due_;
  std::uint64_t in_flight_ = 0;
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_hops_ = 0;
};

}  // namespace clb::dist
