// Message-passing substrate for the distributed protocol implementation.
//
// Messages sent at step t are delivered at step t + delay(from, to), where
// the delay comes from the shared net::DeliveryPolicy (uniform latency or
// per-hop Topology routing) — the same policy the concurrent runtime's
// delay queues use, so the two fabrics cannot drift. Delivery order is
// deterministic: messages due at the same step are handed over grouped by
// recipient, within a recipient ordered by their canonical net::SeqKey
// stamp (send order for unstamped messages), so protocol runs replay
// bit-identically at any sharding.
#pragma once

#include <cstdint>
#include <vector>

#include "net/delivery.hpp"
#include "net/topology.hpp"
#include "util/check.hpp"

namespace clb::dist {

/// Protocol message kinds (Figures 1 and 2, plus the §4.3 pre-round).
enum class MsgKind : std::uint8_t {
  kQuery,     ///< collision-game query; root/level in payload
  kAccept,    ///< target accepted the query; applicative flag in payload
  kForward,   ///< parent tells a non-applicative pair to keep searching
  kId,        ///< applicative processor announces itself to the boss
  kTransfer,  ///< boss ships `payload_a` tasks to the partner
  kPreround,  ///< §4.3 one-shot request
};

struct Message {
  MsgKind kind = MsgKind::kQuery;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t payload_a = 0;  ///< root id / task count
  std::uint32_t payload_b = 0;  ///< level / applicative flag
  net::SeqKey seq{};            ///< canonical send position (see delivery.hpp)
};

/// Delivery fabric over a net::DeliveryPolicy. Ring buffer of
/// `policy.slots()` step slots.
class Network {
 public:
  /// Uniform-latency fabric (the paper's any-to-any machine).
  Network(std::uint64_t n, std::uint32_t latency)
      : policy_(n, latency), slots_(policy_.slots()) {}
  /// Topology-routed fabric: `latency` is the per-hop delay. The topology
  /// is borrowed and must outlive the network.
  Network(std::uint64_t n, std::uint32_t latency_per_hop,
          const net::Topology* topology)
      : policy_(n, latency_per_hop, topology), slots_(policy_.slots()) {}

  [[nodiscard]] const net::DeliveryPolicy& policy() const { return policy_; }
  [[nodiscard]] std::uint32_t latency() const { return policy_.latency(); }
  [[nodiscard]] const net::Topology* topology() const {
    return policy_.topology();
  }
  [[nodiscard]] std::uint64_t in_flight() const { return in_flight_; }
  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }
  /// Cumulative link traversals of all sent messages.
  [[nodiscard]] std::uint64_t total_hops() const { return total_hops_; }
  /// Messages handed over by deliver() so far (in_flight + delivered ==
  /// sent, except across reset() which drops the in-flight ones).
  [[nodiscard]] std::uint64_t total_delivered() const {
    return total_delivered_;
  }
  /// Peak delivery-queue depth: max in_flight observed right after a send.
  [[nodiscard]] std::uint64_t max_in_flight() const { return max_in_flight_; }
  /// Mean in_flight sampled at each deliver() call (before removal) — the
  /// per-step fabric depth, comparable to the rt latency fabric's
  /// fabric_mean_in_flight telemetry gauge.
  [[nodiscard]] double mean_in_flight() const {
    return deliver_calls_ == 0
               ? 0.0
               : static_cast<double>(flight_sum_) /
                     static_cast<double>(deliver_calls_);
  }

  /// Delivery delay for a (src, dst) pair under the current mode.
  [[nodiscard]] std::uint64_t delay(std::uint32_t from,
                                    std::uint32_t to) const {
    return policy_.delay(from, to);
  }
  /// Worst-case delay over any pair (sizes timeouts).
  [[nodiscard]] std::uint64_t max_delay() const { return policy_.max_delay(); }

  /// Queues `m` for delivery at `now + delay(m.from, m.to)`.
  void send(const Message& m, std::uint64_t now);

  /// Returns all messages due at `now`, sorted by (recipient, seq), and
  /// removes them from the fabric. The returned reference is valid until
  /// the next call.
  const std::vector<Message>& deliver(std::uint64_t now);

  void reset();

 private:
  net::DeliveryPolicy policy_;
  std::vector<std::vector<Message>> slots_;  // index: step % slots
  std::vector<Message> due_;
  std::uint64_t in_flight_ = 0;
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_hops_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t max_in_flight_ = 0;
  std::uint64_t flight_sum_ = 0;      // sum of in_flight at deliver() calls
  std::uint64_t deliver_calls_ = 0;
};

}  // namespace clb::dist
