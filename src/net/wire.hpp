// Byte-level wire helpers shared by everything that serialises protocol
// state onto a real transport: little-endian integer packing, a CRC-32
// (reflected, polynomial 0xEDB88320 — the zlib/PNG one) computed with a
// compile-time table, and the canonical encoding of net::SeqKey so framed
// messages carry the exact sequencing vocabulary the in-memory fabric
// orders by. Header-only on purpose: the transport codec and its tests use
// these from both sides of a fork.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/delivery.hpp"

namespace clb::net::wire {

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

[[nodiscard]] inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

[[nodiscard]] inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[nodiscard]] inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}
inline constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();
}  // namespace detail

/// CRC-32 over `len` bytes; `seed` chains partial computations (pass the
/// previous return value to continue a running checksum).
[[nodiscard]] inline std::uint32_t crc32(const std::uint8_t* data,
                                         std::size_t len,
                                         std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = detail::kCrcTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

/// Canonical SeqKey wire layout: send_step u64, stage u8, major u64,
/// minor u32 (21 bytes). The transport's message serialiser writes every
/// message's fabric sequence with this, so a framed message round-trips the
/// exact key net::sort_due_batch orders by.
inline void put_seq_key(std::vector<std::uint8_t>& out, const SeqKey& k) {
  put_u64(out, k.send_step);
  out.push_back(static_cast<std::uint8_t>(k.stage));
  put_u64(out, k.major);
  put_u32(out, k.minor);
}

inline constexpr std::size_t kSeqKeyWireSize = 8 + 1 + 8 + 4;

[[nodiscard]] inline SeqKey get_seq_key(const std::uint8_t* p) {
  SeqKey k;
  k.send_step = get_u64(p);
  k.stage = static_cast<SendStage>(p[8]);
  k.major = get_u64(p + 9);
  k.minor = get_u32(p + 17);
  return k;
}

}  // namespace clb::net::wire
