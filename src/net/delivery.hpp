// Delivery-time policy and canonical send sequencing, shared by every
// message fabric in the repo.
//
// Two implementations exist of "messages take time": the serial
// dist::Network ring buffer and the rt::Runtime per-worker delay queues.
// Both must agree, bit for bit, on
//
//   (1) WHEN a message sent at step t from src to dst becomes deliverable
//       (uniform latency, or per-hop latency on a Topology), and
//   (2) in WHAT ORDER two messages due at the same step for the same
//       recipient are processed.
//
// (1) is DeliveryPolicy. (2) is SeqKey: a stamp assigned at the send site
// from protocol state only — the step the send happened in, which protocol
// stage issued it, and a (major, minor) position within that stage that
// does not depend on sharding or thread interleaving. Sorting a due batch
// by (recipient, SeqKey) therefore yields the same processing order in the
// serial fabric and in the concurrent one at any worker count, which is
// what the rt_latency_equivalence lockstep tier checks.
#pragma once

#include <cstdint>
#include <tuple>

#include "net/topology.hpp"
#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace clb::net {

/// The per-phase i.u.a.r. target stream of the distributed threshold
/// protocol (dist::DistThresholdBalancer and rt::Runtime's latency mode
/// derive targets from the same stream so their requests are identical).
inline constexpr std::uint64_t kDistTargetSalt = 0x64697374746172ULL;  // "disttar"

/// Salt for the per-link jitter stream (heterogeneous link latencies).
inline constexpr std::uint64_t kLinkJitterSalt = 0x6C6E6B6A6974ULL;  // "lnkjit"

/// Which stage of a protocol step issued a send. Stages are processed in
/// this order within one step, so the enum order is the tiebreak order for
/// sends of the same step.
enum class SendStage : std::uint8_t {
  kDeliver = 0,     ///< while processing this step's due messages
  kEvaluate = 1,    ///< while evaluating outstanding requests (timeouts)
  kPhaseStart = 2,  ///< while starting a new phase
};

/// Canonical position of a send. Total order: (send_step, stage, major,
/// minor). `major` identifies the processing unit within the stage (the
/// recipient group being handled, the request being evaluated, the heavy
/// processor being started); `minor` counts sends within that unit.
struct SeqKey {
  std::uint64_t send_step = 0;
  SendStage stage = SendStage::kDeliver;
  std::uint64_t major = 0;
  std::uint32_t minor = 0;

  friend bool operator<(const SeqKey& a, const SeqKey& b) {
    return std::tie(a.send_step, a.stage, a.major, a.minor) <
           std::tie(b.send_step, b.stage, b.major, b.minor);
  }
  friend bool operator==(const SeqKey& a, const SeqKey& b) {
    return std::tie(a.send_step, a.stage, a.major, a.minor) ==
           std::tie(b.send_step, b.stage, b.major, b.minor);
  }
};

/// Major key for SendStage::kEvaluate: requests are evaluated in
/// (activation step, processor) order, which is exactly the order the
/// serial balancer's active list maintains.
[[nodiscard]] inline std::uint64_t evaluate_major(std::uint64_t act_step,
                                                  std::uint32_t proc) {
  CLB_DCHECK(act_step < (1ULL << 32), "activation step must fit in 32 bits");
  return (act_step << 32) | proc;
}

/// When a message becomes deliverable. Uniform mode: every message takes
/// `latency` steps. Topology mode: `latency` is the per-hop delay and a
/// message takes `max(1, latency * hops(src, dst))` steps. Mirrors the two
/// dist::Network constructors; the topology is borrowed.
///
/// Heterogeneous links: with `jitter > 0` every ordered pair (src, dst)
/// additionally pays a fixed extra delay in [0, jitter], drawn once and
/// deterministically from `hash(kLinkJitterSalt, seed, src, dst)` — the same
/// link is always equally slow, any two policies built from the same
/// (seed, jitter) agree bit for bit, and `jitter = 0` is the exact uniform
/// degenerate case. The draw lives here (not in LinkModel) so timeouts
/// (`await_until`), ring sizing (`slots()`) and the phase failsafe all see
/// the jittered worst case automatically on both fabrics.
class DeliveryPolicy {
 public:
  DeliveryPolicy(std::uint64_t n, std::uint32_t latency,
                 std::uint32_t jitter = 0, std::uint64_t seed = 0)
      : n_(n), latency_(latency), jitter_(jitter),
        jitter_key_(rng::hash_combine(kLinkJitterSalt, seed)) {
    CLB_CHECK(latency_ >= 1, "delivery latency must be >= 1 step");
    max_delay_ = latency_ + jitter_;
  }

  DeliveryPolicy(std::uint64_t n, std::uint32_t latency_per_hop,
                 const Topology* topology, std::uint32_t jitter = 0,
                 std::uint64_t seed = 0)
      : n_(n), latency_(latency_per_hop), topology_(topology), jitter_(jitter),
        jitter_key_(rng::hash_combine(kLinkJitterSalt, seed)) {
    CLB_CHECK(latency_ >= 1, "per-hop latency must be >= 1 step");
    CLB_CHECK(topology_ != nullptr && topology_->n() == n_,
              "topology must cover all n processors");
    max_delay_ = std::max<std::uint64_t>(
                     1, static_cast<std::uint64_t>(latency_) *
                            topology_->diameter()) +
                 jitter_;
  }

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] std::uint32_t latency() const { return latency_; }
  [[nodiscard]] std::uint32_t jitter() const { return jitter_; }
  [[nodiscard]] const Topology* topology() const { return topology_; }

  [[nodiscard]] std::uint64_t delay(std::uint32_t from,
                                    std::uint32_t to) const {
    std::uint64_t base = latency_;
    if (topology_ != nullptr) {
      base = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(latency_) * topology_->hops(from, to));
    }
    if (jitter_ == 0) return base;
    const std::uint64_t link =
        (static_cast<std::uint64_t>(from) << 32) | to;
    return base + rng::hash_combine(jitter_key_, link) % (jitter_ + 1ULL);
  }

  [[nodiscard]] std::uint64_t hops(std::uint32_t from, std::uint32_t to) const {
    return topology_ ? topology_->hops(from, to) : 1;
  }

  /// Worst-case delay over any pair (sizes timeouts and ring buffers).
  [[nodiscard]] std::uint64_t max_delay() const { return max_delay_; }
  /// Ring-buffer slot count that makes `due % slots()` collision-free.
  [[nodiscard]] std::uint64_t slots() const { return max_delay_ + 1; }

 private:
  std::uint64_t n_;
  std::uint32_t latency_;
  const Topology* topology_ = nullptr;
  std::uint32_t jitter_ = 0;
  std::uint64_t jitter_key_ = 0;
  std::uint64_t max_delay_ = 1;
};

}  // namespace clb::net
