// Interconnect topologies with hop accounting.
//
// The paper's machine model charges one unit per message (any-to-any
// communication). On real parallel machines a message between processors
// src and dst traverses hops(src, dst) links. Because every partner choice
// in the algorithm (collision queries, probes, transfer targets) is
// i.u.a.r., the expected link cost of a message equals mean_hops() exactly,
// so hop-weighted communication tables (EXP-16) follow from the message
// counters without instrumenting every send.
//
// Topologies provided: complete graph (the paper's model), ring, hypercube,
// and 2-D torus — the classic SPAA-era machine graphs.
#pragma once

#include <cstdint>
#include <string>

namespace clb::net {

/// Point-to-point topology over n processors.
class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::uint64_t n() const = 0;
  /// Links traversed by a message from src to dst (0 when src == dst).
  [[nodiscard]] virtual std::uint32_t hops(std::uint64_t src,
                                           std::uint64_t dst) const = 0;
  /// Links per node.
  [[nodiscard]] virtual std::uint32_t degree() const = 0;
  /// Maximum hops between any pair.
  [[nodiscard]] virtual std::uint32_t diameter() const = 0;
  /// Exact expected hops between an ordered pair chosen i.u.a.r.
  /// (including src == dst pairs, which contribute 0).
  [[nodiscard]] virtual double mean_hops() const = 0;

  /// Monte-Carlo estimate of mean_hops() — used by tests to validate the
  /// closed forms.
  [[nodiscard]] double mean_hops_sampled(std::uint64_t samples,
                                         std::uint64_t seed) const;
};

/// The paper's model: every pair is directly connected.
class CompleteTopology final : public Topology {
 public:
  explicit CompleteTopology(std::uint64_t n);
  [[nodiscard]] std::string name() const override { return "complete"; }
  [[nodiscard]] std::uint64_t n() const override { return n_; }
  [[nodiscard]] std::uint32_t hops(std::uint64_t src,
                                   std::uint64_t dst) const override {
    return src == dst ? 0 : 1;
  }
  [[nodiscard]] std::uint32_t degree() const override {
    return static_cast<std::uint32_t>(n_ - 1);
  }
  [[nodiscard]] std::uint32_t diameter() const override { return 1; }
  [[nodiscard]] double mean_hops() const override;

 private:
  std::uint64_t n_;
};

/// Bidirectional ring: hops = min(|i-j|, n - |i-j|).
class RingTopology final : public Topology {
 public:
  explicit RingTopology(std::uint64_t n);
  [[nodiscard]] std::string name() const override { return "ring"; }
  [[nodiscard]] std::uint64_t n() const override { return n_; }
  [[nodiscard]] std::uint32_t hops(std::uint64_t src,
                                   std::uint64_t dst) const override;
  [[nodiscard]] std::uint32_t degree() const override { return 2; }
  [[nodiscard]] std::uint32_t diameter() const override {
    return static_cast<std::uint32_t>(n_ / 2);
  }
  [[nodiscard]] double mean_hops() const override;

 private:
  std::uint64_t n_;
};

/// Hypercube on n = 2^d nodes: hops = popcount(src ^ dst).
class HypercubeTopology final : public Topology {
 public:
  explicit HypercubeTopology(std::uint64_t n);  // n must be a power of two
  [[nodiscard]] std::string name() const override { return "hypercube"; }
  [[nodiscard]] std::uint64_t n() const override { return n_; }
  [[nodiscard]] std::uint32_t hops(std::uint64_t src,
                                   std::uint64_t dst) const override;
  [[nodiscard]] std::uint32_t degree() const override { return dim_; }
  [[nodiscard]] std::uint32_t diameter() const override { return dim_; }
  [[nodiscard]] double mean_hops() const override;

 private:
  std::uint64_t n_;
  std::uint32_t dim_;
};

/// 2-D torus on rows x cols nodes (wrap-around Manhattan distance).
class Torus2D final : public Topology {
 public:
  Torus2D(std::uint64_t rows, std::uint64_t cols);
  [[nodiscard]] std::string name() const override { return "torus2d"; }
  [[nodiscard]] std::uint64_t n() const override { return rows_ * cols_; }
  [[nodiscard]] std::uint32_t hops(std::uint64_t src,
                                   std::uint64_t dst) const override;
  [[nodiscard]] std::uint32_t degree() const override { return 4; }
  [[nodiscard]] std::uint32_t diameter() const override {
    return static_cast<std::uint32_t>(rows_ / 2 + cols_ / 2);
  }
  [[nodiscard]] double mean_hops() const override;

 private:
  std::uint64_t rows_;
  std::uint64_t cols_;
};

}  // namespace clb::net
