#include "net/topology.hpp"

#include <bit>

#include "rng/dist.hpp"
#include "rng/xoshiro.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace clb::net {

namespace {

// Expected min(k, n-k) for k uniform over {0..n-1}: n/4 for even n,
// (n^2 - 1)/(4n) for odd n.
double ring_mean(std::uint64_t n) {
  const double nn = static_cast<double>(n);
  if (n % 2 == 0) return nn / 4.0;
  return (nn * nn - 1.0) / (4.0 * nn);
}

std::uint32_t ring_dist(std::uint64_t a, std::uint64_t b, std::uint64_t n) {
  const std::uint64_t d = a > b ? a - b : b - a;
  return static_cast<std::uint32_t>(d < n - d ? d : n - d);
}

}  // namespace

double Topology::mean_hops_sampled(std::uint64_t samples,
                                   std::uint64_t seed) const {
  CLB_CHECK(samples > 0, "need at least one sample");
  rng::Xoshiro256 rng(seed);
  double total = 0;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const std::uint64_t src = rng::bounded(rng, n());
    const std::uint64_t dst = rng::bounded(rng, n());
    total += hops(src, dst);
  }
  return total / static_cast<double>(samples);
}

CompleteTopology::CompleteTopology(std::uint64_t n) : n_(n) {
  CLB_CHECK(n >= 2, "complete topology needs n >= 2");
}

double CompleteTopology::mean_hops() const {
  return static_cast<double>(n_ - 1) / static_cast<double>(n_);
}

RingTopology::RingTopology(std::uint64_t n) : n_(n) {
  CLB_CHECK(n >= 3, "ring needs n >= 3");
}

std::uint32_t RingTopology::hops(std::uint64_t src, std::uint64_t dst) const {
  CLB_DCHECK(src < n_ && dst < n_, "ring endpoint out of range");
  return ring_dist(src, dst, n_);
}

double RingTopology::mean_hops() const { return ring_mean(n_); }

HypercubeTopology::HypercubeTopology(std::uint64_t n) : n_(n) {
  CLB_CHECK(util::is_pow2(n) && n >= 2, "hypercube needs a power-of-two n");
  dim_ = util::ilog2(n);
}

std::uint32_t HypercubeTopology::hops(std::uint64_t src,
                                      std::uint64_t dst) const {
  CLB_DCHECK(src < n_ && dst < n_, "hypercube endpoint out of range");
  return static_cast<std::uint32_t>(std::popcount(src ^ dst));
}

double HypercubeTopology::mean_hops() const {
  return static_cast<double>(dim_) / 2.0;
}

Torus2D::Torus2D(std::uint64_t rows, std::uint64_t cols)
    : rows_(rows), cols_(cols) {
  CLB_CHECK(rows >= 2 && cols >= 2, "torus needs rows, cols >= 2");
}

std::uint32_t Torus2D::hops(std::uint64_t src, std::uint64_t dst) const {
  CLB_DCHECK(src < n() && dst < n(), "torus endpoint out of range");
  const std::uint64_t r1 = src / cols_, c1 = src % cols_;
  const std::uint64_t r2 = dst / cols_, c2 = dst % cols_;
  return ring_dist(r1, r2, rows_) + ring_dist(c1, c2, cols_);
}

double Torus2D::mean_hops() const {
  return ring_mean(rows_) + ring_mean(cols_);
}

}  // namespace clb::net
