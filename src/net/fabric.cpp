#include "net/fabric.hpp"

namespace clb::net {

void LinkModel::configure(const NetConfig& cfg, std::uint64_t run_seed,
                          std::uint64_t max_delay) {
  CLB_CHECK(cfg.max_attempts >= 1 && cfg.max_attempts <= 16,
            "link max_attempts must be in [1, 16]");
  CLB_CHECK(cfg.loss_per_64k < 65536, "link loss must be < 1 (per 65536)");
  cfg_ = cfg;
  key_ = rng::hash_combine(kLinkLossSalt, run_seed);
  rto_ = cfg.rto != 0 ? cfg.rto : 2 * max_delay;
  CLB_CHECK(rto_ >= 1, "retransmission timeout must be >= 1 step");
  links_.clear();
}

bool LinkModel::lost(std::uint32_t from, std::uint32_t to, std::uint64_t seq,
                     std::uint32_t attempt) const {
  const std::uint64_t link = (static_cast<std::uint64_t>(from) << 32) | to;
  const std::uint64_t draw = rng::hash_combine(
      rng::hash_combine(rng::hash_combine(key_, link), seq), attempt);
  return (draw & 0xFFFF) < cfg_.loss_per_64k;
}

bool LinkModel::ack_lost(std::uint32_t from, std::uint32_t to,
                         std::uint64_t seq) const {
  const std::uint64_t link = (static_cast<std::uint64_t>(from) << 32) | to;
  const std::uint64_t draw = rng::hash_combine(
      rng::hash_combine(rng::hash_combine(key_, link), seq), 0xACCULL);
  return (draw & 0xFFFF) < cfg_.loss_per_64k;
}

SendPlan LinkModel::plan(std::uint32_t from, std::uint32_t to,
                         std::uint64_t now, std::uint64_t wire_delay) {
  SendPlan p;
  p.due = now + wire_delay;
  if (!active()) return p;
  std::uint64_t depart = now;
  LinkState& ls = state(from, to);
  if (cfg_.bandwidth > 0) {
    // Micro-slot FIFO wire clock: step s has `bandwidth` slots s*B .. s*B+B-1;
    // a send departs in the first free slot at or after its own step.
    const std::uint64_t cap = cfg_.bandwidth;
    const std::uint64_t slot = std::max(now * cap, ls.next_slot);
    ls.next_slot = slot + 1;
    depart = slot / cap;
    queued_delay_ += depart - now;
  }
  std::uint32_t attempts = 1;
  if (cfg_.lossy()) {
    const std::uint64_t seq = ls.seq++;
    while (attempts < cfg_.max_attempts && lost(from, to, seq, attempts)) {
      ++attempts;
    }
    retransmits_ += attempts - 1;
    // rto >= a round trip, so the delivered attempt's ack normally stops
    // the sender before the next timeout. A lost ack lets exactly one
    // duplicate through; the receiver's per-link sequence suppresses it.
    if (attempts < cfg_.max_attempts && ack_lost(from, to, seq)) {
      p.dup = true;
      ++dup_suppressed_;
    }
  }
  p.attempts = attempts;
  p.due = depart + static_cast<std::uint64_t>(attempts - 1) * rto_ + wire_delay;
  p.dup_due = p.due + rto_;
  return p;
}

bool LinkModel::mutation_lose_first_attempt(std::uint32_t from,
                                            std::uint32_t to) {
  if (!cfg_.lossy()) return false;
  LinkState& ls = state(from, to);
  return lost(from, to, ls.seq++, 1);
}

std::uint64_t phase_failsafe(std::uint64_t tree_depth,
                             std::uint64_t round_budget,
                             std::uint64_t max_delay,
                             std::uint64_t worst_extra) {
  const std::uint64_t d = max_delay + worst_extra;
  return 4 * tree_depth * round_budget * (2 * d) + 4 * d + 8;
}

}  // namespace clb::net
