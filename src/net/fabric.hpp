// The one message substrate: a delay-queue fabric of future-step rings,
// plus the link model that decides *when* a send is deliverable under
// heterogeneous latency, per-link bandwidth caps, and loss + retransmit.
//
// Until PR 7 the repo carried two independent implementations of "messages
// take time": dist::Network's private ring buffer (serial) and
// rt::Runtime's per-worker delay queues (concurrent), kept bit-identical
// only by the shared DeliveryPolicy/SeqKey discipline. Fabric<M> is that
// mechanism extracted once: dist::Network is now a thin adapter over a
// single Fabric<dist::Message>, and every rt worker owns a
// Fabric<rt::Message*> over its shard — serial execution is literally the
// 1-worker degenerate case of the same code.
//
// Determinism contract (what makes the lockstep tiers possible):
//   * file(now, due, m) with due strictly in the future — a message can
//     never mature in the step that sent it (CLB_DCHECK'd; a zero
//     effective latency would silently break replay).
//   * take_due(now) returns exactly the messages due at `now`, in filing
//     order; callers impose the canonical (group, SeqKey) order with
//     sort_due_batch so the batch order is worker-count invariant.
//   * LinkModel state is keyed by the ordered pair (src, dst) and every
//     message on a link is planned by the link's owner in protocol order,
//     so the per-link wire clocks and loss draws evolve identically in the
//     serial fabric and in any sharding of the concurrent one.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/delivery.hpp"
#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace clb::net {

/// Salt for the per-link loss / ack-loss streams.
inline constexpr std::uint64_t kLinkLossSalt = 0x6C6E6B6C6F7373ULL;  // "lnkloss"

/// Link-model knobs shared by every fabric. All defaults are the exact
/// degenerate case (uniform latency, infinite bandwidth, lossless wire) in
/// which the fabric behaves bit-for-bit like the pre-PR-7 substrates.
struct NetConfig {
  /// Heterogeneous links: extra per-(src,dst) delay in [0, jitter], drawn
  /// deterministically from the run seed (see DeliveryPolicy). 0 = uniform.
  std::uint32_t jitter = 0;
  /// Per-link bandwidth cap in messages per step; over-budget sends queue
  /// FIFO behind the wire and their delivery step reflects the queueing
  /// delay. 0 = unlimited.
  std::uint32_t bandwidth = 0;
  /// i.i.d. per-transmission loss probability, as a numerator over 65536.
  /// Lost transmissions are retransmitted by the sender after `rto` steps,
  /// carrying a duplicate-suppression sequence number; the final attempt
  /// always goes through, so loss shows up as deterministic extra latency
  /// and the conservation oracle stays exact. 0 = lossless.
  std::uint32_t loss_per_64k = 0;
  /// Retransmission timeout in steps. 0 derives 2 * max_delay (a full
  /// round trip, so an ack for a delivered attempt always beats the next
  /// timeout and at most one duplicate per message can reach the wire).
  std::uint32_t rto = 0;
  /// Transmissions per message, counting the first (>= 1, <= 16).
  std::uint32_t max_attempts = 4;

  [[nodiscard]] bool lossy() const { return loss_per_64k > 0; }
  [[nodiscard]] bool shaped() const {
    return jitter != 0 || bandwidth != 0 || loss_per_64k != 0;
  }
};

/// What LinkModel::plan decided for one send.
struct SendPlan {
  std::uint64_t due = 0;      ///< step the (single surviving) copy matures
  std::uint32_t attempts = 1; ///< transmissions (attempts - 1 retransmits)
  /// True when the delivered attempt's ack was lost: the sender's timeout
  /// fires anyway, a duplicate reaches the receiver at `dup_due` and is
  /// suppressed by its sequence number. The clean fabrics only count it
  /// (dup_suppressed); the dup-delivery mutation applies it instead.
  bool dup = false;
  std::uint64_t dup_due = 0;
};

/// Per-link wire state: FIFO bandwidth clocks and the loss / retransmit
/// schedule. Pure counter-hash randomness — a plan is a deterministic
/// function of (seed, src, dst, per-link sequence number), so any sharding
/// of the links across workers replays the serial fabric exactly.
class LinkModel {
 public:
  LinkModel() = default;

  /// `max_delay` is DeliveryPolicy::max_delay() (jitter included); it sizes
  /// the default rto. Must be called before plan() on a shaped config.
  void configure(const NetConfig& cfg, std::uint64_t run_seed,
                 std::uint64_t max_delay);

  [[nodiscard]] bool active() const { return cfg_.shaped(); }
  [[nodiscard]] const NetConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t rto() const { return rto_; }

  /// Worst-case delay a send can accrue beyond the wire (retransmits only;
  /// queueing is unbounded and excluded on purpose — the failsafe already
  /// fires on genuinely wedged phases). Feeds phase_failsafe.
  [[nodiscard]] std::uint64_t worst_extra() const {
    return cfg_.lossy() ? (cfg_.max_attempts - 1) * rto_ : 0;
  }

  /// Plans one send on link (from, to) issued at `now` whose wire transit
  /// takes `wire_delay` steps. Advances the link's clock and sequence.
  SendPlan plan(std::uint32_t from, std::uint32_t to, std::uint64_t now,
                std::uint64_t wire_delay);

  /// Mutation hook (link-loss-no-retransmit): draws the next loss decision
  /// on the link and reports whether the first attempt would have been
  /// lost. Consumes one link sequence number.
  bool mutation_lose_first_attempt(std::uint32_t from, std::uint32_t to);

  /// Forgets all wire backlog and link sequences. Both fabrics call this
  /// on a forced phase end, mirroring the message discard: a forced end
  /// abandons the wire, it does not replay it.
  void reset() { links_.clear(); }

  /// Cumulative stats (survive reset, like the fabric's send counters).
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t dup_suppressed() const { return dup_suppressed_; }
  [[nodiscard]] std::uint64_t queued_delay() const { return queued_delay_; }

 private:
  struct LinkState {
    std::uint64_t next_slot = 0;  ///< next free micro-slot (bandwidth)
    std::uint64_t seq = 0;        ///< duplicate-suppression sequence
  };

  LinkState& state(std::uint32_t from, std::uint32_t to) {
    return links_[(static_cast<std::uint64_t>(from) << 32) | to];
  }
  [[nodiscard]] bool lost(std::uint32_t from, std::uint32_t to,
                          std::uint64_t seq, std::uint32_t attempt) const;
  [[nodiscard]] bool ack_lost(std::uint32_t from, std::uint32_t to,
                              std::uint64_t seq) const;

  NetConfig cfg_{};
  std::uint64_t key_ = 0;  ///< hash(kLinkLossSalt, run_seed)
  std::uint64_t rto_ = 1;
  std::unordered_map<std::uint64_t, LinkState> links_;
  std::uint64_t retransmits_ = 0;
  std::uint64_t dup_suppressed_ = 0;
  std::uint64_t queued_delay_ = 0;
};

/// The delay queue itself: a ring of future-step buckets covering dues
/// within `horizon` steps of now, spilling farther dues (bandwidth backlog,
/// retransmit schedules) into an ordered overflow map. Messages are moved,
/// never copied twice; ownership semantics are whatever M's are (dist files
/// Message values, rt files heap Message pointers).
template <typename M>
class Fabric {
 public:
  Fabric() { init(1); }
  explicit Fabric(std::uint64_t horizon) { init(horizon); }

  /// (Re)sizes the ring. Only legal while nothing is in flight.
  void init(std::uint64_t horizon) {
    CLB_CHECK(pending() == 0, "cannot resize a fabric with messages in flight");
    horizon_ = horizon < 1 ? 1 : horizon;
    rings_.assign(horizon_ + 1, {});
  }

  /// Files `m`, sent at `now`, for delivery at `due`. The strict
  /// inequality is the deterministic-replay guarantee: a zero (or negative
  /// effective) latency would deliver in-step, in an order that depends on
  /// where the send happened inside the step.
  void file(std::uint64_t now, std::uint64_t due, M m) {
    CLB_DCHECK(due > now, "fabric message filed with due step <= now");
    ++filed_;
    if (due - now <= horizon_) {
      rings_[due % rings_.size()].push_back(std::move(m));
    } else {
      far_[due].push_back(std::move(m));
    }
  }

  /// Appends every message due at `now` to `out`, in filing order.
  void take_due(std::uint64_t now, std::vector<M>& out) {
    auto& slot = rings_[now % rings_.size()];
    matured_ += slot.size();
    out.insert(out.end(), std::make_move_iterator(slot.begin()),
               std::make_move_iterator(slot.end()));
    slot.clear();
    while (!far_.empty() && far_.begin()->first <= now) {
      auto& batch = far_.begin()->second;
      matured_ += batch.size();
      out.insert(out.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
      far_.erase(far_.begin());
    }
  }

  /// Drops everything still in flight, invoking `fn(M&)` on each message
  /// first (rt uses this to delete heap messages and book the discard).
  template <typename Fn>
  void discard_pending(Fn&& fn) {
    for (auto& slot : rings_) {
      for (M& m : slot) fn(m);
      discarded_ += slot.size();
      slot.clear();
    }
    for (auto& [due, batch] : far_) {
      for (M& m : batch) fn(m);
      discarded_ += batch.size();
    }
    far_.clear();
  }

  [[nodiscard]] std::uint64_t filed() const { return filed_; }
  [[nodiscard]] std::uint64_t matured() const { return matured_; }
  [[nodiscard]] std::uint64_t discarded() const { return discarded_; }
  [[nodiscard]] std::uint64_t pending() const {
    return filed_ - matured_ - discarded_;
  }
  [[nodiscard]] bool empty() const { return pending() == 0; }
  [[nodiscard]] std::uint64_t horizon() const { return horizon_; }

 private:
  std::uint64_t horizon_ = 1;
  std::vector<std::vector<M>> rings_;
  std::map<std::uint64_t, std::vector<M>> far_;
  std::uint64_t filed_ = 0;
  std::uint64_t matured_ = 0;
  std::uint64_t discarded_ = 0;
};

/// Canonical due-batch order, shared by both fabrics: messages are grouped
/// by the processing unit that handles them (the recipient, or the source
/// for staged transfer commands) and ordered by SeqKey within the group.
/// `canonical = false` keeps only the grouping and preserves arrival order
/// inside it (free-running mode, where determinism is not required). Both
/// paths are stable, so messages without a seq stamp keep their send order.
template <typename M, typename GroupFn, typename SeqFn>
void sort_due_batch(std::vector<M>& batch, GroupFn&& group_of, SeqFn&& seq_of,
                    bool canonical) {
  if (canonical) {
    std::stable_sort(batch.begin(), batch.end(), [&](const M& x, const M& y) {
      const auto gx = group_of(x);
      const auto gy = group_of(y);
      if (gx != gy) return gx < gy;
      return seq_of(x) < seq_of(y);
    });
  } else {
    std::stable_sort(batch.begin(), batch.end(), [&](const M& x, const M& y) {
      return group_of(x) < group_of(y);
    });
  }
}

/// The forced-end failsafe both balancers derive when max_phase_steps is
/// left at 0: a generous multiple of the worst-case phase length (tree
/// descent, collision retries, a round trip per round, plus the link
/// model's worst-case retransmit delay), so it only fires on a genuinely
/// wedged phase. Computed here so the two fabrics can never disagree.
[[nodiscard]] std::uint64_t phase_failsafe(std::uint64_t tree_depth,
                                           std::uint64_t round_budget,
                                           std::uint64_t max_delay,
                                           std::uint64_t worst_extra);

}  // namespace clb::net
