// Subsampled time series recorder for long simulations.
#pragma once

#include <cstdint>
#include <vector>

namespace clb::stats {

/// Records (step, value) samples every `stride` steps; memory stays bounded
/// for arbitrarily long runs by doubling the stride once `max_points` is hit
/// (keeping every other retained point).
class TimeSeries {
 public:
  explicit TimeSeries(std::uint64_t stride = 1, std::size_t max_points = 4096)
      : stride_(stride ? stride : 1), max_points_(max_points) {}

  void record(std::uint64_t step, double value) {
    if (step % stride_ != 0) return;
    steps_.push_back(step);
    values_.push_back(value);
    if (steps_.size() >= max_points_) thin();
  }

  [[nodiscard]] const std::vector<std::uint64_t>& steps() const {
    return steps_;
  }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] std::uint64_t stride() const { return stride_; }

 private:
  void thin() {
    std::size_t w = 0;
    for (std::size_t r = 0; r < steps_.size(); r += 2, ++w) {
      steps_[w] = steps_[r];
      values_[w] = values_[r];
    }
    steps_.resize(w);
    values_.resize(w);
    stride_ *= 2;
  }

  std::uint64_t stride_;
  std::size_t max_points_;
  std::vector<std::uint64_t> steps_;
  std::vector<double> values_;
};

}  // namespace clb::stats
