// Aggregation of a named scalar across independent trials.
#pragma once

#include <map>
#include <string>

#include "stats/moments.hpp"

namespace clb::stats {

/// Collects named scalar metrics over repeated independent trials and
/// reports mean ± CI95 / min / max per metric. Benches use one TrialSet per
/// swept configuration.
class TrialSet {
 public:
  void add(const std::string& metric, double value) {
    metrics_[metric].add(value);
  }

  [[nodiscard]] const OnlineMoments& get(const std::string& metric) const {
    static const OnlineMoments kEmpty;
    auto it = metrics_.find(metric);
    return it == metrics_.end() ? kEmpty : it->second;
  }

  [[nodiscard]] bool has(const std::string& metric) const {
    return metrics_.contains(metric);
  }

  [[nodiscard]] const std::map<std::string, OnlineMoments>& all() const {
    return metrics_;
  }

 private:
  std::map<std::string, OnlineMoments> metrics_;
};

}  // namespace clb::stats
