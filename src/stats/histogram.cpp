#include "stats/histogram.hpp"

#include "util/check.hpp"

namespace clb::stats {

void IntHistogram::add(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  counts_[value] += count;
  total_ += count;
}

void IntHistogram::merge(const IntHistogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t v = 0; v < other.counts_.size(); ++v) {
    counts_[v] += other.counts_[v];
  }
  total_ += other.total_;
}

std::uint64_t IntHistogram::count_at(std::uint64_t value) const {
  return value < counts_.size() ? counts_[value] : 0;
}

std::uint64_t IntHistogram::max_value() const {
  for (std::size_t v = counts_.size(); v-- > 0;) {
    if (counts_[v] > 0) return v;
  }
  return 0;
}

double IntHistogram::mean() const {
  if (total_ == 0) return 0.0;
  double sum = 0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    sum += static_cast<double>(v) * static_cast<double>(counts_[v]);
  }
  return sum / static_cast<double>(total_);
}

double IntHistogram::tail_at_least(std::uint64_t k) const {
  if (total_ == 0) return 0.0;
  std::uint64_t tail = 0;
  for (std::size_t v = k; v < counts_.size(); ++v) tail += counts_[v];
  return static_cast<double>(tail) / static_cast<double>(total_);
}

std::uint64_t IntHistogram::quantile(double q) const {
  CLB_CHECK(q >= 0.0 && q <= 1.0, "quantile q in [0,1]");
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t acc = 0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    acc += counts_[v];
    if (acc >= target && acc > 0) return v;
  }
  return max_value();
}

void IntHistogram::clear() {
  counts_.clear();
  total_ = 0;
}

}  // namespace clb::stats
