// Online first/second-moment accumulation (Welford) plus min/max.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace clb::stats {

/// Numerically stable streaming mean/variance/min/max accumulator.
class OnlineMoments {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void merge(const OnlineMoments& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  /// Half-width of the normal-approximation 95% confidence interval for the
  /// mean. Zero when fewer than two samples.
  [[nodiscard]] double ci95_half_width() const {
    if (count_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace clb::stats
