// Integer-valued histogram for load / waiting-time distributions.
#pragma once

#include <cstdint>
#include <vector>

namespace clb::stats {

/// Histogram over non-negative integers with dynamic range growth.
/// Used for per-processor load distributions (Lemma 2) and task sojourn
/// times (Corollary 1).
class IntHistogram {
 public:
  /// Adds `count` observations of `value`.
  void add(std::uint64_t value, std::uint64_t count = 1);

  /// Merges another histogram into this one.
  void merge(const IntHistogram& other);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t count_at(std::uint64_t value) const;

  /// Largest observed value (0 when empty).
  [[nodiscard]] std::uint64_t max_value() const;

  [[nodiscard]] double mean() const;

  /// Empirical P[X >= k].
  [[nodiscard]] double tail_at_least(std::uint64_t k) const;

  /// Smallest v with P[X <= v] >= q, for q in [0,1].
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// Direct access to per-value counts (index = value).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }

  void clear();

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace clb::stats
