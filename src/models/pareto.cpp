#include "models/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rng/philox.hpp"
#include "util/check.hpp"

namespace clb::models {

namespace {
constexpr std::uint64_t kSalt = 0x706172657464ULL;  // "paretd"
}  // namespace

ParetoModel::ParetoModel(ParetoConfig cfg)
    : cfg_(cfg), arrival_(cfg.p_arrival), consume_(cfg.p_consume) {
  CLB_CHECK(cfg_.alpha > 0.0, "pareto: alpha > 0");
  CLB_CHECK(cfg_.xm >= 1.0, "pareto: xm >= 1");
  CLB_CHECK(cfg_.cap >= 1, "pareto: cap >= 1");
}

std::uint32_t ParetoModel::job_size(double u) const {
  const double x = cfg_.xm * std::pow(1.0 - u, -1.0 / cfg_.alpha);
  if (!(x < static_cast<double>(cfg_.cap))) return cfg_.cap;
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(x));
}

sim::StepAction ParetoModel::step_action(std::uint64_t seed,
                                         std::uint64_t proc,
                                         std::uint64_t step, std::uint64_t,
                                         std::uint64_t) {
  rng::CounterRng rng(seed, rng::hash_combine(proc, kSalt), step);
  sim::StepAction act;
  const bool arrive = arrival_(rng);
  const double u = rng::uniform01(rng);  // drawn on both paths: lane stays
                                         // aligned whether a job arrives
  if (arrive) act.generate = job_size(u);
  act.consume = consume_(rng) ? 1 : 0;
  return act;
}

double ParetoModel::expected_load_per_processor() const {
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace clb::models
