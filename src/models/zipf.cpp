#include "models/zipf.hpp"

#include <cmath>
#include <limits>

#include "rng/philox.hpp"
#include "util/check.hpp"

namespace clb::models {

namespace {
constexpr std::uint64_t kSalt = 0x7A697066676EULL;  // "zipfgn"
}  // namespace

ZipfModel::ZipfModel(ZipfConfig cfg, std::uint64_t n)
    : cfg_(cfg), n_(n), consume_(cfg.p_consume) {
  CLB_CHECK(n_ >= 1, "zipf: n >= 1");
  CLB_CHECK(cfg_.s > 0.0, "zipf: s > 0");
  CLB_CHECK(cfg_.mean_rate >= 0.0, "zipf: mean_rate >= 0");
  weight_.resize(n_);
  double total = 0.0;
  for (std::uint64_t r = 0; r < n_; ++r) {
    weight_[r] = std::pow(static_cast<double>(r + 1), -cfg_.s);
    total += weight_[r];
  }
  for (double& w : weight_) w /= total;
}

std::uint64_t ZipfModel::rank_of(std::uint64_t proc,
                                 std::uint64_t step) const {
  const std::uint64_t rot =
      cfg_.rotate_period == 0 ? 0 : (step / cfg_.rotate_period) % n_;
  return (proc + rot) % n_;
}

double ZipfModel::rate_for(std::uint64_t proc, std::uint64_t step) const {
  return cfg_.mean_rate * static_cast<double>(n_) *
         weight_[rank_of(proc, step)];
}

sim::StepAction ZipfModel::step_action(std::uint64_t seed, std::uint64_t proc,
                                       std::uint64_t step, std::uint64_t,
                                       std::uint64_t) {
  rng::CounterRng rng(seed, rng::hash_combine(proc, kSalt), step);
  sim::StepAction act;
  const double rate = rate_for(proc, step);
  const double whole = std::floor(rate);
  act.generate = static_cast<std::uint32_t>(whole) +
                 (rng::uniform01(rng) < rate - whole ? 1 : 0);
  act.consume = consume_(rng) ? 1 : 0;
  return act;
}

double ZipfModel::expected_load_per_processor() const {
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace clb::models
