// The paper's primary ("Single") load generation model, Section 1.2:
// at each step every processor generates one task with probability p and
// consumes one with probability q = p + eps (when a task is present).
// Task running times are geometrically distributed; eps > 0 is required for
// a steady state.
#pragma once

#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "sim/model.hpp"

namespace clb::models {

class SingleModel final : public sim::LoadModel {
 public:
  SingleModel(double p, double eps);

  [[nodiscard]] std::string name() const override;

  sim::StepAction step_action(std::uint64_t seed, std::uint64_t proc,
                              std::uint64_t step, std::uint64_t load,
                              std::uint64_t system_load) override;

  /// rho/(1-rho) with rho = p(1-q)/(q(1-p)) — Lemma 2's stationary mean.
  [[nodiscard]] double expected_load_per_processor() const override;

  [[nodiscard]] double p() const { return p_; }
  [[nodiscard]] double eps() const { return eps_; }
  /// Stationary ratio rho = p_gain / p_lose (< 1).
  [[nodiscard]] double rho() const { return rho_; }

 private:
  double p_;
  double eps_;
  double rho_;
  rng::BernoulliDraw gen_;
  rng::BernoulliDraw con_;
};

}  // namespace clb::models
