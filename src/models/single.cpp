#include "models/single.hpp"

#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace clb::models {

namespace {
// Stream salt keying this model's randomness; generation and consumption
// take independent 64-bit lanes of the same Philox block.
constexpr std::uint64_t kSalt = 0x67656E65726174ULL;  // "generat"
}  // namespace

namespace {
double validated_p(double p) {
  CLB_CHECK(p > 0.0 && p < 1.0, "Single model: p in (0,1)");
  return p;
}
double validated_eps(double p, double eps) {
  CLB_CHECK(eps > 0.0 && p + eps <= 1.0, "Single model: 0 < eps <= 1-p");
  return eps;
}
}  // namespace

SingleModel::SingleModel(double p, double eps)
    : p_(validated_p(p)),
      eps_(validated_eps(p, eps)),
      gen_(p),
      con_(p + eps) {
  const double q = p + eps;
  const double p_gain = p * (1.0 - q);
  const double p_lose = q * (1.0 - p);
  rho_ = p_gain / p_lose;
}

std::string SingleModel::name() const { return "single"; }

sim::StepAction SingleModel::step_action(std::uint64_t seed,
                                         std::uint64_t proc,
                                         std::uint64_t step, std::uint64_t,
                                         std::uint64_t) {
  rng::CounterRng rng(seed, rng::hash_combine(proc, kSalt), step);
  sim::StepAction act;
  act.generate = gen_(rng) ? 1 : 0;  // first lane of the block
  act.consume = con_(rng) ? 1 : 0;   // second lane — independent bits
  return act;
}

double SingleModel::expected_load_per_processor() const {
  return rho_ / (1.0 - rho_);
}

}  // namespace clb::models
