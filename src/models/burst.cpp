#include "models/burst.hpp"

#include <cmath>
#include <limits>

#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace clb::models {

namespace {
constexpr std::uint64_t kSalt = 0x6275727374676EULL;  // "burstgn"
}  // namespace

BurstModel::BurstModel(BurstConfig cfg, std::uint64_t n)
    : cfg_(cfg), n_(n), base_(cfg.p_base), consume_(cfg.p_consume) {
  CLB_CHECK(cfg_.period >= 1 && cfg_.burst_len <= cfg_.period,
            "burst: burst_len <= period");
  CLB_CHECK(cfg_.hot_fraction > 0.0 && cfg_.hot_fraction <= 1.0,
            "burst: hot_fraction in (0,1]");
  hot_count_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(
             cfg_.hot_fraction * static_cast<double>(n))));
}

bool BurstModel::is_hot(std::uint64_t proc, std::uint64_t step) const {
  if (step % cfg_.period >= cfg_.burst_len) return false;
  const std::uint64_t window = step / cfg_.period;
  const std::uint64_t start =
      cfg_.rotate_hotspot ? (window * hot_count_) % n_ : 0;
  const std::uint64_t offset = (proc + n_ - start) % n_;
  return offset < hot_count_;
}

sim::StepAction BurstModel::step_action(std::uint64_t seed,
                                        std::uint64_t proc,
                                        std::uint64_t step, std::uint64_t,
                                        std::uint64_t) {
  rng::CounterRng rng(seed, rng::hash_combine(proc, kSalt), step);
  sim::StepAction act;
  if (is_hot(proc, step)) {
    act.generate = cfg_.burst_rate;
    (void)rng();  // keep the consume lane aligned with the cold path
  } else {
    act.generate = base_(rng) ? 1 : 0;
  }
  act.consume = consume_(rng) ? 1 : 0;
  return act;
}

double BurstModel::expected_load_per_processor() const {
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace clb::models
