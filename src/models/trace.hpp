// Deterministic scripted model for unit tests: generation and consumption
// are read from explicit per-(step, processor) tables.
#pragma once

#include <limits>
#include <vector>

#include "sim/model.hpp"
#include "util/check.hpp"

namespace clb::models {

/// Replays a fixed schedule. Entry [step][proc] gives the count; steps past
/// the end of the table generate/consume nothing.
class TraceModel final : public sim::LoadModel {
 public:
  TraceModel(std::vector<std::vector<std::uint32_t>> generate_table,
             std::vector<std::vector<std::uint32_t>> consume_table)
      : gen_(std::move(generate_table)), con_(std::move(consume_table)) {}

  [[nodiscard]] std::string name() const override { return "trace"; }

  sim::StepAction step_action(std::uint64_t, std::uint64_t proc,
                              std::uint64_t step, std::uint64_t,
                              std::uint64_t) override {
    return sim::StepAction{lookup(gen_, step, proc), lookup(con_, step, proc)};
  }

  [[nodiscard]] double expected_load_per_processor() const override {
    return std::numeric_limits<double>::quiet_NaN();
  }

 private:
  static std::uint32_t lookup(
      const std::vector<std::vector<std::uint32_t>>& table, std::uint64_t step,
      std::uint64_t proc) {
    if (step >= table.size()) return 0;
    const auto& row = table[step];
    return proc < row.size() ? row[proc] : 0;
  }

  std::vector<std::vector<std::uint32_t>> gen_;
  std::vector<std::vector<std::uint32_t>> con_;
};

}  // namespace clb::models
