// The paper's "Multi" model, Section 1.2: a processor generates i tasks with
// probability pmf[i] for 0 <= i < c (c constant), with expected generation
// strictly below one task per step; it deterministically consumes one task
// per step when one is present.
#pragma once

#include <vector>

#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "sim/model.hpp"

namespace clb::models {

class MultiModel final : public sim::LoadModel {
 public:
  /// pmf[i] = probability of generating i tasks; must sum to 1 (normalised
  /// internally) with mean < 1.
  explicit MultiModel(std::vector<double> pmf);

  [[nodiscard]] std::string name() const override;

  sim::StepAction step_action(std::uint64_t seed, std::uint64_t proc,
                              std::uint64_t step, std::uint64_t load,
                              std::uint64_t system_load) override;

  [[nodiscard]] double expected_load_per_processor() const override;

  /// Maximum tasks per step (the paper's constant c).
  [[nodiscard]] std::uint32_t c() const {
    return static_cast<std::uint32_t>(pmf_size_);
  }
  [[nodiscard]] double mean_generated() const { return mean_; }

 private:
  rng::DiscreteDraw draw_;
  std::vector<double> pmf_;  // normalised copy, for the stationary analysis
  std::size_t pmf_size_;
  double mean_;
};

}  // namespace clb::models
