#include "models/weighted.hpp"

#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace clb::models {

namespace {
constexpr std::uint64_t kSalt = 0x77656967687473ULL;  // "weights"
}

WeightedSingleModel::WeightedSingleModel(double p, double eps,
                                         std::vector<double> weight_pmf)
    : p_(p),
      eps_(eps),
      gen_(p),
      con_(p + eps),
      weight_draw_(weight_pmf),
      pmf_size_(weight_pmf.size()) {
  CLB_CHECK(p > 0.0 && p < 1.0, "weighted model: p in (0,1)");
  CLB_CHECK(eps > 0.0 && p + eps <= 1.0, "weighted model: 0 < eps <= 1-p");
  CLB_CHECK(!weight_pmf.empty(), "weighted model: weight pmf non-empty");
  const double q = p + eps;
  rho_ = (p * (1.0 - q)) / (q * (1.0 - p));
  mean_weight_ = weight_draw_.mean() + 1.0;  // draw is over {0..m-1} -> +1
}

std::string WeightedSingleModel::name() const {
  return "weighted-single(wmax=" + std::to_string(pmf_size_) + ")";
}

sim::StepAction WeightedSingleModel::step_action(std::uint64_t seed,
                                                 std::uint64_t proc,
                                                 std::uint64_t step,
                                                 std::uint64_t,
                                                 std::uint64_t) {
  rng::CounterRng rng(seed, rng::hash_combine(proc, kSalt), step);
  sim::StepAction act;
  act.generate = gen_(rng) ? 1 : 0;
  act.consume = con_(rng) ? 1 : 0;
  act.weight = act.generate ? weight_draw_(rng) + 1 : 1;
  return act;
}

double WeightedSingleModel::expected_load_per_processor() const {
  return rho_ / (1.0 - rho_);
}

}  // namespace clb::models
