// Heterogeneous processor speeds (production workload zoo): arrivals are
// uniform but each processor belongs to a seeded speed class and consumes
// at a class-scaled rate — slow machines in a mixed fleet accumulate load
// even under balanced arrivals, which is exactly the imbalance a
// load-oblivious protocol cannot see coming.
#pragma once

#include <vector>

#include "rng/dist.hpp"
#include "sim/model.hpp"

namespace clb::models {

struct HeteroConfig {
  double p_gen = 0.35;           // generation probability (uniform)
  std::uint32_t speed_classes = 3;  // classes 0..speed_classes-1
  /// Class k consumes with probability min(1, base_consume * (k+1)): class 0
  /// is the slowest, the top class the fastest.
  double base_consume = 0.2;
};

class HeteroModel final : public sim::LoadModel {
 public:
  explicit HeteroModel(HeteroConfig cfg);

  [[nodiscard]] std::string name() const override { return "hetero"; }

  sim::StepAction step_action(std::uint64_t seed, std::uint64_t proc,
                              std::uint64_t step, std::uint64_t load,
                              std::uint64_t system_load) override;

  [[nodiscard]] double expected_load_per_processor() const override;

  /// Seeded, step-invariant speed class of `proc` (exposed for tests).
  [[nodiscard]] std::uint32_t speed_class(std::uint64_t seed,
                                          std::uint64_t proc) const;

 private:
  HeteroConfig cfg_;
  rng::BernoulliDraw gen_;
  std::vector<rng::BernoulliDraw> consume_by_class_;
};

}  // namespace clb::models
