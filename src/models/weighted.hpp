// Weighted-task generation (extension): like the Single model, but every
// generated task carries a weight drawn from a small discrete distribution.
// The continuous-setting analogue of [BMS97]'s weighted balls; uniformity
// W_avg / W_max controls how badly a count-based balancer misjudges weighted
// load (EXP-17).
#pragma once

#include <vector>

#include "rng/dist.hpp"
#include "sim/model.hpp"

namespace clb::models {

class WeightedSingleModel final : public sim::LoadModel {
 public:
  /// Generates one task with probability p, consumes one with probability
  /// p + eps (like Single). `weight_pmf[i]` is the probability the task has
  /// weight i + 1.
  WeightedSingleModel(double p, double eps, std::vector<double> weight_pmf);

  [[nodiscard]] std::string name() const override;

  sim::StepAction step_action(std::uint64_t seed, std::uint64_t proc,
                              std::uint64_t step, std::uint64_t load,
                              std::uint64_t system_load) override;

  /// Expected count load per processor (same chain as Single).
  [[nodiscard]] double expected_load_per_processor() const override;

  [[nodiscard]] double mean_weight() const { return mean_weight_; }
  [[nodiscard]] std::uint32_t max_weight() const {
    return static_cast<std::uint32_t>(pmf_size_);
  }
  /// BMS97's uniformity ratio Delta = W_avg / W_max (1 = unit weights).
  [[nodiscard]] double uniformity() const {
    return mean_weight_ / static_cast<double>(pmf_size_);
  }

 private:
  double p_;
  double eps_;
  double rho_;
  rng::BernoulliDraw gen_;
  rng::BernoulliDraw con_;
  rng::DiscreteDraw weight_draw_;
  std::size_t pmf_size_;
  double mean_weight_;
};

}  // namespace clb::models
