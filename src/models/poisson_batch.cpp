#include "models/poisson_batch.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace clb::models {

namespace {
constexpr std::uint64_t kSalt = 0x706F6973736F6EULL;  // "poisson"
}

PoissonBatchModel::PoissonBatchModel(double lambda, std::uint32_t cap)
    : lambda_(lambda), cap_(cap) {
  CLB_CHECK(lambda > 0.0 && lambda < 1.0, "poisson-batch: lambda in (0,1)");
  CLB_CHECK(cap >= 4, "poisson-batch: cap >= 4");
}

std::string PoissonBatchModel::name() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "poisson-batch(lambda=%.2f)", lambda_);
  return buf;
}

sim::StepAction PoissonBatchModel::step_action(std::uint64_t seed,
                                               std::uint64_t proc,
                                               std::uint64_t step,
                                               std::uint64_t, std::uint64_t) {
  rng::CounterRng rng(seed, rng::hash_combine(proc, kSalt), step);
  // Knuth's product method — fine for lambda < 1 (expected ~2 draws).
  const double threshold = std::exp(-lambda_);
  double prod = rng::uniform01(rng);
  std::uint32_t k = 0;
  while (prod > threshold && k < cap_) {
    ++k;
    prod *= rng::uniform01(rng);
  }
  return sim::StepAction{k, 1};
}

double PoissonBatchModel::expected_load_per_processor() const {
  // M/D/1-like queue; no simple closed form for this discrete variant.
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace clb::models
