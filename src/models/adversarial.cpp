#include "models/adversarial.hpp"

#include <algorithm>
#include <limits>

#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace clb::models {

namespace {
constexpr std::uint64_t kGenSalt = 0x61647665727361ULL;  // "adversa"
}

AdversarialModel::AdversarialModel(AdversarialConfig cfg, std::uint64_t n)
    : cfg_(cfg),
      n_(n),
      window_used_(n, 0),
      spawn_(cfg.p_spawn),
      seed_draw_(cfg.p_seed) {
  CLB_CHECK(cfg_.window >= 1, "adversarial: window >= 1");
  CLB_CHECK(cfg_.branch >= 1, "adversarial: branch >= 1");
  CLB_CHECK(cfg_.cap >= n, "adversarial: cap must be at least n");
}

std::string AdversarialModel::name() const {
  return "adversarial(branch=" + std::to_string(cfg_.branch) +
         ",cap=" + std::to_string(cfg_.cap) + ")";
}

sim::StepAction AdversarialModel::step_action(std::uint64_t seed,
                                              std::uint64_t proc,
                                              std::uint64_t step,
                                              std::uint64_t load,
                                              std::uint64_t system_load) {
  // Serial generation: processors are visited in increasing id order, so the
  // running global budget below is deterministic.
  if (step != current_step_) {
    current_step_ = step;
    step_budget_ = cfg_.cap > system_load ? cfg_.cap - system_load : 0;
    const std::uint64_t window = step / cfg_.window;
    if (window != current_window_) {
      current_window_ = window;
      std::fill(window_used_.begin(), window_used_.end(), 0);
    }
  }
  if (step_budget_ == 0) return sim::StepAction{0, 1};
  const std::uint64_t window_left =
      cfg_.per_window_budget > window_used_[proc]
          ? cfg_.per_window_budget - window_used_[proc]
          : 0;
  if (window_left == 0) return sim::StepAction{0, 1};

  rng::CounterRng rng(seed, rng::hash_combine(proc, kGenSalt), step);
  std::uint64_t want = 0;
  // "Each task currently being performed is able to generate a constant
  // number of new tasks": the task performed this step is the head of the
  // queue — or, on an idle processor, a freshly seeded computation root
  // (which is consumed this very step and may branch like any other task).
  bool performing = load > 0;
  if (!performing && seed_draw_(rng)) {
    want += 1;  // the new root
    performing = true;
  }
  if (performing && spawn_(rng)) want += cfg_.branch;
  const std::uint64_t granted =
      std::min({want, window_left, step_budget_});
  window_used_[proc] += granted;
  step_budget_ -= granted;
  // Deterministic unit consumption (the processor performs one task/step).
  return sim::StepAction{static_cast<std::uint32_t>(granted), 1};
}

double AdversarialModel::expected_load_per_processor() const {
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace clb::models
