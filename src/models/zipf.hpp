// Zipfian-skewed placement model (production workload zoo): total arrival
// volume is spread over processors proportionally to a Zipf(s) law over
// ranks — rank 0 takes the lion's share, the tail almost nothing — the
// skew of key-partitioned workloads (hot shards). Optionally the rank
// assignment rotates every `rotate_period` steps (hot key migration).
#pragma once

#include <vector>

#include "rng/dist.hpp"
#include "sim/model.hpp"

namespace clb::models {

struct ZipfConfig {
  double s = 1.2;           // Zipf exponent (larger = more skew)
  double mean_rate = 0.3;   // average tasks per processor-step, machine-wide
  double p_consume = 0.5;   // consumption probability
  std::uint64_t rotate_period = 0;  // steps between rank rotations; 0 = static
};

class ZipfModel final : public sim::LoadModel {
 public:
  ZipfModel(ZipfConfig cfg, std::uint64_t n);

  [[nodiscard]] std::string name() const override { return "zipf"; }

  sim::StepAction step_action(std::uint64_t seed, std::uint64_t proc,
                              std::uint64_t step, std::uint64_t load,
                              std::uint64_t system_load) override;

  [[nodiscard]] double expected_load_per_processor() const override;

  /// Zipf rank of `proc` at `step` (0 = hottest).
  [[nodiscard]] std::uint64_t rank_of(std::uint64_t proc,
                                      std::uint64_t step) const;
  /// Expected tasks per step for `proc` at `step` (exposed for tests; sums
  /// to mean_rate * n over the machine).
  [[nodiscard]] double rate_for(std::uint64_t proc, std::uint64_t step) const;

 private:
  ZipfConfig cfg_;
  std::uint64_t n_;
  std::vector<double> weight_;  // (rank+1)^-s, normalised to sum 1
  rng::BernoulliDraw consume_;
};

}  // namespace clb::models
