#include "models/diurnal.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "rng/philox.hpp"
#include "util/check.hpp"

namespace clb::models {

namespace {
constexpr std::uint64_t kSalt = 0x646975726E6CULL;  // "diurnl"
}  // namespace

DiurnalModel::DiurnalModel(DiurnalConfig cfg)
    : cfg_(cfg), consume_(cfg.p_consume) {
  CLB_CHECK(cfg_.period >= 2, "diurnal: period >= 2");
  CLB_CHECK(cfg_.p_trough >= 0.0 && cfg_.p_peak <= 1.0 &&
                cfg_.p_trough <= cfg_.p_peak,
            "diurnal: 0 <= p_trough <= p_peak <= 1");
}

double DiurnalModel::rate_at(std::uint64_t proc, std::uint64_t step) const {
  const double pos =
      static_cast<double>(step % cfg_.period) /
          static_cast<double>(cfg_.period) +
      cfg_.proc_skew * static_cast<double>(proc);
  const double wave =
      0.5 * (1.0 + std::sin(2.0 * std::numbers::pi * pos));
  return cfg_.p_trough + (cfg_.p_peak - cfg_.p_trough) * wave;
}

sim::StepAction DiurnalModel::step_action(std::uint64_t seed,
                                          std::uint64_t proc,
                                          std::uint64_t step, std::uint64_t,
                                          std::uint64_t) {
  rng::CounterRng rng(seed, rng::hash_combine(proc, kSalt), step);
  sim::StepAction act;
  act.generate = rng::uniform01(rng) < rate_at(proc, step) ? 1 : 0;
  act.consume = consume_(rng) ? 1 : 0;
  return act;
}

double DiurnalModel::expected_load_per_processor() const {
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace clb::models
