// Poisson batch arrivals (Mitzenmacher's arrival process [Mit96] in the
// synchronous setting): each processor receives Poisson(lambda) new tasks
// per step (lambda < 1) and consumes one task per step when present. Unlike
// the paper's Single/Geometric/Multi models the batch size is unbounded,
// which stresses the O((log log n)^2)-bound's robustness to heavy-ish
// per-step bursts.
#pragma once

#include "sim/model.hpp"

namespace clb::models {

class PoissonBatchModel final : public sim::LoadModel {
 public:
  /// lambda in (0, 1): expected tasks generated per processor per step.
  /// Batch sizes are capped at `cap` (default 16) to keep the model within
  /// the engine's u32 interface; P[Poisson(<1) > 16] < 1e-14.
  explicit PoissonBatchModel(double lambda, std::uint32_t cap = 16);

  [[nodiscard]] std::string name() const override;

  sim::StepAction step_action(std::uint64_t seed, std::uint64_t proc,
                              std::uint64_t step, std::uint64_t load,
                              std::uint64_t system_load) override;

  [[nodiscard]] double expected_load_per_processor() const override;

  [[nodiscard]] double lambda() const { return lambda_; }

 private:
  double lambda_;
  std::uint32_t cap_;
};

}  // namespace clb::models
