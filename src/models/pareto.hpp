// Heavy-tailed (Pareto) service-time model (production workload zoo): jobs
// arrive as a Bernoulli process per processor-step, and each job is a batch
// of `size` unit tasks with size drawn from a truncated Pareto(alpha, xm) —
// a job of size S occupies roughly S consumption steps, so batch size *is*
// service time in the unit-task machinery. alpha in (1, 2] gives the
// finite-mean / infinite-variance regime production traces show ("elephants
// and mice"): most jobs are minimal, rare jobs are `cap`-sized.
#pragma once

#include "rng/dist.hpp"
#include "sim/model.hpp"

namespace clb::models {

struct ParetoConfig {
  double p_arrival = 0.08;  // job arrival probability per processor-step
  double alpha = 1.5;       // tail index (smaller = heavier tail)
  double xm = 1.0;          // scale: minimum job size
  std::uint32_t cap = 64;   // truncation: largest job size
  double p_consume = 0.6;   // consumption probability
};

class ParetoModel final : public sim::LoadModel {
 public:
  explicit ParetoModel(ParetoConfig cfg);

  [[nodiscard]] std::string name() const override { return "pareto"; }

  sim::StepAction step_action(std::uint64_t seed, std::uint64_t proc,
                              std::uint64_t step, std::uint64_t load,
                              std::uint64_t system_load) override;

  [[nodiscard]] double expected_load_per_processor() const override;

  /// Inverse-CDF job size for uniform u in [0,1) (exposed for tests:
  /// x = xm * (1-u)^(-1/alpha), floored, clamped to [1, cap]).
  [[nodiscard]] std::uint32_t job_size(double u) const;

 private:
  ParetoConfig cfg_;
  rng::BernoulliDraw arrival_;
  rng::BernoulliDraw consume_;
};

}  // namespace clb::models
