#include "models/geometric.hpp"

#include <cmath>

#include "analysis/batch_chain.hpp"

#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace clb::models {

namespace {
constexpr std::uint64_t kGenSalt = 0x67656F6D657472ULL;  // "geometr"
}

GeometricModel::GeometricModel(std::uint32_t k) : k_(k) {
  CLB_CHECK(k >= 1 && k <= 62, "Geometric model: k in [1, 62]");
}

std::string GeometricModel::name() const {
  return "geometric(k=" + std::to_string(k_) + ")";
}

sim::StepAction GeometricModel::step_action(std::uint64_t seed,
                                            std::uint64_t proc,
                                            std::uint64_t step, std::uint64_t,
                                            std::uint64_t) {
  rng::CounterRng rng(seed, rng::hash_combine(proc, kGenSalt), step);
  // Deterministic unit consumption per the model definition.
  return sim::StepAction{rng::truncated_geometric(rng, k_), 1};
}

double GeometricModel::expected_load_per_processor() const {
  // Stationary mean of the batch-arrival chain L' = max(0, L + G - 1)
  // (Lemma 2 generalised; see analysis/batch_chain.hpp).
  const auto pmf = analysis::geometric_model_pmf(k_);
  return analysis::pmf_mean(
      analysis::batch_chain_stationary(pmf, 1, 256));
}

double GeometricModel::mean_generated() const {
  double m = 0;
  for (std::uint32_t i = 1; i <= k_; ++i) {
    m += static_cast<double>(i) * std::pow(2.0, -(static_cast<double>(i) + 1));
  }
  return m;
}

}  // namespace clb::models
