// The paper's "Geometric" model, Section 1.2: in one step each processor
// generates i tasks with probability 2^-(i+1) for i in {1..k} (k constant)
// and nothing with the remaining probability (> 1/2); it deterministically
// consumes one task per step when one is present. Models constant task
// running time with multi-task generation.
#pragma once

#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "sim/model.hpp"

namespace clb::models {

class GeometricModel final : public sim::LoadModel {
 public:
  explicit GeometricModel(std::uint32_t k);

  [[nodiscard]] std::string name() const override;

  sim::StepAction step_action(std::uint64_t seed, std::uint64_t proc,
                              std::uint64_t step, std::uint64_t load,
                              std::uint64_t system_load) override;

  /// No closed-form stationary mean (random walk with deterministic drain);
  /// returns NaN.
  [[nodiscard]] double expected_load_per_processor() const override;

  [[nodiscard]] std::uint32_t k() const { return k_; }
  /// Expected tasks generated per step: sum_{i=1..k} i 2^-(i+1)  (< 1).
  [[nodiscard]] double mean_generated() const;

 private:
  std::uint32_t k_;
};

}  // namespace clb::models
