#include "models/multi.hpp"

#include "analysis/batch_chain.hpp"

#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace clb::models {

namespace {
constexpr std::uint64_t kGenSalt = 0x6D756C74696D64ULL;  // "multimd"
}

MultiModel::MultiModel(std::vector<double> pmf)
    : draw_(pmf), pmf_(std::move(pmf)), pmf_size_(pmf_.size()),
      mean_(draw_.mean()) {
  CLB_CHECK(pmf_.size() >= 2, "Multi model: need at least {0,1} outcomes");
  CLB_CHECK(mean_ < 1.0,
            "Multi model: expected generation per step must be < 1");
  double total = 0;
  for (const double p : pmf_) total += p;
  for (double& p : pmf_) p /= total;
}

std::string MultiModel::name() const {
  return "multi(c=" + std::to_string(pmf_size_) + ")";
}

sim::StepAction MultiModel::step_action(std::uint64_t seed,
                                        std::uint64_t proc,
                                        std::uint64_t step, std::uint64_t,
                                        std::uint64_t) {
  rng::CounterRng rng(seed, rng::hash_combine(proc, kGenSalt), step);
  return sim::StepAction{draw_(rng), 1};
}

double MultiModel::expected_load_per_processor() const {
  // Stationary mean of the batch-arrival chain (analysis/batch_chain.hpp);
  // pmf_ is kept normalised by DiscreteDraw's constructor contract.
  return analysis::pmf_mean(
      analysis::batch_chain_stationary(pmf_, 1, 256));
}

}  // namespace clb::models
