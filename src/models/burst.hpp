// Bursty hot-spot model (not from the paper; used by the examples and the
// robustness tests): a baseline Single-like trickle everywhere, plus
// periodic bursts during which a contiguous group of "hot" processors
// generates several tasks per step. Stresses the threshold trigger with
// correlated, localized overload — the scenario the paper's introduction
// motivates (tasks generated together on one processor).
#pragma once

#include "rng/dist.hpp"
#include "sim/model.hpp"

namespace clb::models {

struct BurstConfig {
  double p_base = 0.2;          // baseline generation probability
  double p_consume = 0.5;       // consumption probability
  std::uint64_t period = 64;    // steps between burst windows
  std::uint64_t burst_len = 4;  // burst window length in steps
  double hot_fraction = 0.05;   // fraction of processors that are hot
  std::uint32_t burst_rate = 3; // tasks per step on hot processors in bursts
  bool rotate_hotspot = true;   // move the hot group every period
};

class BurstModel final : public sim::LoadModel {
 public:
  BurstModel(BurstConfig cfg, std::uint64_t n);

  [[nodiscard]] std::string name() const override { return "burst"; }

  sim::StepAction step_action(std::uint64_t seed, std::uint64_t proc,
                              std::uint64_t step, std::uint64_t load,
                              std::uint64_t system_load) override;

  [[nodiscard]] double expected_load_per_processor() const override;

  /// True iff `proc` is in the hot group at `step` (exposed for tests).
  [[nodiscard]] bool is_hot(std::uint64_t proc, std::uint64_t step) const;

 private:
  BurstConfig cfg_;
  std::uint64_t n_;
  std::uint64_t hot_count_;
  rng::BernoulliDraw base_;
  rng::BernoulliDraw consume_;
};

}  // namespace clb::models
