// Flash-crowd arrival model (production workload zoo): a baseline trickle
// everywhere, plus seeded flash events — once per `interval`-step window, at
// a random offset, a random contiguous group of processors generates a burst
// whose rate decays geometrically over the event. Unlike BurstModel the
// event timing and placement are random (counter-RNG on the window index),
// so neither a balancer nor a band can anticipate the spike.
#pragma once

#include "rng/dist.hpp"
#include "sim/model.hpp"

namespace clb::models {

struct FlashCrowdConfig {
  double p_base = 0.15;        // baseline generation probability
  double p_consume = 0.5;      // consumption probability
  std::uint64_t interval = 48; // window length; one flash event per window
  std::uint64_t flash_len = 6; // flash duration in steps
  double hot_fraction = 0.15;  // fraction of processors hit by a flash
  std::uint32_t peak_rate = 8; // generation at flash onset; halves each step
};

class FlashCrowdModel final : public sim::LoadModel {
 public:
  FlashCrowdModel(FlashCrowdConfig cfg, std::uint64_t n);

  [[nodiscard]] std::string name() const override { return "flash-crowd"; }

  sim::StepAction step_action(std::uint64_t seed, std::uint64_t proc,
                              std::uint64_t step, std::uint64_t load,
                              std::uint64_t system_load) override;

  [[nodiscard]] double expected_load_per_processor() const override;

  /// Position of `step` within its window's flash event, or -1 when the
  /// event is not active at `step` (exposed for tests).
  [[nodiscard]] std::int64_t flash_pos(std::uint64_t seed,
                                       std::uint64_t step) const;
  /// True iff `proc` is in the flash group and the event is active.
  [[nodiscard]] bool is_hot(std::uint64_t seed, std::uint64_t proc,
                            std::uint64_t step) const;

 private:
  /// Window-level draws: (event offset within window, hot-group start).
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> window_draws(
      std::uint64_t seed, std::uint64_t window) const;

  FlashCrowdConfig cfg_;
  std::uint64_t n_;
  std::uint64_t hot_count_;
  rng::BernoulliDraw base_;
  rng::BernoulliDraw consume_;
};

}  // namespace clb::models
