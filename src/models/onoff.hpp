// On/Off (Markov-modulated) generation: each processor flips between an ON
// state (generates with probability p_on per step) and an OFF state
// (generates nothing) with geometric dwell times. Captures temporally
// correlated demand — the regime where threshold-triggered balancing earns
// its keep, since ON processors pile up load locally for whole bursts.
//
// Stationary ON fraction = p_off_to_on / (p_off_to_on + p_on_to_off);
// stability requires p_on * on_fraction < consume probability.
#pragma once

#include <vector>

#include "rng/dist.hpp"
#include "sim/model.hpp"

namespace clb::models {

struct OnOffConfig {
  double p_on = 0.8;          ///< generation probability while ON
  double p_consume = 0.5;     ///< consumption probability (any state)
  double p_on_to_off = 0.05;  ///< per-step chance an ON processor turns OFF
  double p_off_to_on = 0.02;  ///< per-step chance an OFF processor turns ON
};

/// Stateful model: keeps one ON/OFF bit per processor, advanced inside
/// step_action. The engine calls step_action exactly once per (processor,
/// step), and each processor's state depends only on its own history, so
/// the parallel step loop stays deterministic for any worker count. The
/// initial state is a deterministic hash of (seed, proc) at the stationary
/// ON fraction.
class OnOffModel final : public sim::LoadModel {
 public:
  OnOffModel(OnOffConfig cfg, std::uint64_t n);

  [[nodiscard]] std::string name() const override { return "on-off"; }

  sim::StepAction step_action(std::uint64_t seed, std::uint64_t proc,
                              std::uint64_t step, std::uint64_t load,
                              std::uint64_t system_load) override;

  [[nodiscard]] double expected_load_per_processor() const override;

  /// Stationary probability a processor is ON.
  [[nodiscard]] double on_fraction() const { return on_fraction_; }
  /// Long-run expected generation rate per processor per step.
  [[nodiscard]] double mean_rate() const {
    return cfg_.p_on * on_fraction_;
  }

  /// Current state of `proc` (exposed for tests).
  [[nodiscard]] bool is_on(std::uint64_t proc) const {
    return state_[proc] != 0;
  }

 private:
  OnOffConfig cfg_;
  double on_fraction_;
  rng::BernoulliDraw gen_;
  rng::BernoulliDraw con_;
  rng::BernoulliDraw off_flip_;  // ON -> OFF
  rng::BernoulliDraw on_flip_;   // OFF -> ON
  std::vector<std::uint8_t> state_;  // 1 = ON
};

}  // namespace clb::models
