// The paper's "Adversarial" model, Section 1.2: within a window of
// W = (log log n)^2 steps each processor may change its load on its own by
// O(W) tasks in either direction; an upper bound B on the total system load
// is given. The concrete adversary implemented here is the tree-like
// generation scheme the paper names: each task currently being performed may
// spawn a constant number of children, subject to the per-window budget and
// the global cap B. Consumption is one task per step when present.
//
// Generation depends on global state (the cap), so this model declares
// serial_generation() and keeps an internal running budget; results are
// deterministic for a fixed seed.
#pragma once

#include "rng/dist.hpp"
#include "sim/model.hpp"

namespace clb::models {

struct AdversarialConfig {
  /// Budget window length in steps (the paper's T).
  std::uint64_t window = 16;
  /// Maximum self-generated tasks per processor per window (the O(T) bound).
  std::uint64_t per_window_budget = 16;
  /// Children spawned when an in-progress task branches.
  std::uint32_t branch = 2;
  /// Probability an in-progress task branches this step.
  double p_spawn = 0.3;
  /// Probability an idle processor seeds a fresh root task this step.
  double p_seed = 0.05;
  /// Global system-load cap B (0 = derive as 4 * n at model bind time is
  /// NOT done automatically; callers must set it explicitly).
  std::uint64_t cap = 1 << 16;
};

class AdversarialModel final : public sim::LoadModel {
 public:
  explicit AdversarialModel(AdversarialConfig cfg, std::uint64_t n);

  [[nodiscard]] std::string name() const override;

  sim::StepAction step_action(std::uint64_t seed, std::uint64_t proc,
                              std::uint64_t step, std::uint64_t load,
                              std::uint64_t system_load) override;

  [[nodiscard]] bool serial_generation() const override { return true; }
  [[nodiscard]] double expected_load_per_processor() const override;

  [[nodiscard]] const AdversarialConfig& config() const { return cfg_; }

 private:
  AdversarialConfig cfg_;
  std::uint64_t n_;
  std::vector<std::uint64_t> window_used_;  // per-proc budget spent in window
  std::uint64_t current_window_ = ~0ULL;
  std::uint64_t current_step_ = ~0ULL;
  std::uint64_t step_budget_ = 0;  // remaining global headroom this step
  rng::BernoulliDraw spawn_;
  rng::BernoulliDraw seed_draw_;
};

}  // namespace clb::models
