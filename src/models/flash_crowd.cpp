#include "models/flash_crowd.hpp"

#include <cmath>
#include <limits>

#include "rng/philox.hpp"
#include "util/check.hpp"

namespace clb::models {

namespace {
constexpr std::uint64_t kSalt = 0x666C617368ULL;     // "flash" (per proc-step)
constexpr std::uint64_t kEvtSalt = 0x666C657674ULL;  // "flevt" (per window)
}  // namespace

FlashCrowdModel::FlashCrowdModel(FlashCrowdConfig cfg, std::uint64_t n)
    : cfg_(cfg), n_(n), base_(cfg.p_base), consume_(cfg.p_consume) {
  CLB_CHECK(cfg_.flash_len >= 1 && cfg_.flash_len <= cfg_.interval,
            "flash-crowd: 1 <= flash_len <= interval");
  CLB_CHECK(cfg_.hot_fraction > 0.0 && cfg_.hot_fraction <= 1.0,
            "flash-crowd: hot_fraction in (0,1]");
  CLB_CHECK(cfg_.peak_rate >= 1, "flash-crowd: peak_rate >= 1");
  hot_count_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(
             cfg_.hot_fraction * static_cast<double>(n))));
}

std::pair<std::uint64_t, std::uint64_t> FlashCrowdModel::window_draws(
    std::uint64_t seed, std::uint64_t window) const {
  rng::CounterRng rng(seed, kEvtSalt, window);
  const std::uint64_t offset =
      rng::bounded(rng, cfg_.interval - cfg_.flash_len + 1);
  const std::uint64_t start = rng::bounded(rng, n_);
  return {offset, start};
}

std::int64_t FlashCrowdModel::flash_pos(std::uint64_t seed,
                                        std::uint64_t step) const {
  const auto [offset, start] = window_draws(seed, step / cfg_.interval);
  (void)start;
  const std::uint64_t in = step % cfg_.interval;
  if (in < offset || in >= offset + cfg_.flash_len) return -1;
  return static_cast<std::int64_t>(in - offset);
}

bool FlashCrowdModel::is_hot(std::uint64_t seed, std::uint64_t proc,
                             std::uint64_t step) const {
  if (flash_pos(seed, step) < 0) return false;
  const auto [offset, start] = window_draws(seed, step / cfg_.interval);
  (void)offset;
  return (proc + n_ - start) % n_ < hot_count_;
}

sim::StepAction FlashCrowdModel::step_action(std::uint64_t seed,
                                             std::uint64_t proc,
                                             std::uint64_t step,
                                             std::uint64_t, std::uint64_t) {
  rng::CounterRng rng(seed, rng::hash_combine(proc, kSalt), step);
  sim::StepAction act;
  const std::int64_t pos = flash_pos(seed, step);
  if (pos >= 0 && is_hot(seed, proc, step)) {
    // Geometric decay over the event: peak, peak/2, peak/4, ... (min 1).
    act.generate =
        std::max<std::uint32_t>(1, cfg_.peak_rate >> static_cast<int>(pos));
    (void)rng();  // keep the consume lane aligned with the cold path
  } else {
    act.generate = base_(rng) ? 1 : 0;
  }
  act.consume = consume_(rng) ? 1 : 0;
  return act;
}

double FlashCrowdModel::expected_load_per_processor() const {
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace clb::models
