#include "models/hetero.hpp"

#include <algorithm>
#include <limits>

#include "rng/philox.hpp"
#include "util/check.hpp"

namespace clb::models {

namespace {
constexpr std::uint64_t kSalt = 0x686574657267ULL;     // "heterg" (per step)
constexpr std::uint64_t kClassSalt = 0x686574636CULL;  // "hetcl" (per proc)
}  // namespace

HeteroModel::HeteroModel(HeteroConfig cfg) : cfg_(cfg), gen_(cfg.p_gen) {
  CLB_CHECK(cfg_.speed_classes >= 1 && cfg_.speed_classes <= 16,
            "hetero: speed_classes in [1,16]");
  CLB_CHECK(cfg_.base_consume > 0.0, "hetero: base_consume > 0");
  consume_by_class_.reserve(cfg_.speed_classes);
  for (std::uint32_t k = 0; k < cfg_.speed_classes; ++k) {
    consume_by_class_.emplace_back(
        std::min(1.0, cfg_.base_consume * static_cast<double>(k + 1)));
  }
}

std::uint32_t HeteroModel::speed_class(std::uint64_t seed,
                                       std::uint64_t proc) const {
  rng::CounterRng rng(seed, kClassSalt, proc);
  return static_cast<std::uint32_t>(rng::bounded(rng, cfg_.speed_classes));
}

sim::StepAction HeteroModel::step_action(std::uint64_t seed,
                                         std::uint64_t proc,
                                         std::uint64_t step, std::uint64_t,
                                         std::uint64_t) {
  rng::CounterRng rng(seed, rng::hash_combine(proc, kSalt), step);
  sim::StepAction act;
  act.generate = gen_(rng) ? 1 : 0;
  act.consume = consume_by_class_[speed_class(seed, proc)](rng) ? 1 : 0;
  return act;
}

double HeteroModel::expected_load_per_processor() const {
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace clb::models
