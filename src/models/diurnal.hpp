// Diurnal arrival model (production workload zoo): generation probability
// follows a sinusoidal day/night cycle — the load shape of user-facing
// services. Optionally each processor's cycle is phase-shifted by its index
// (time zones), so the "day" sweeps across the machine instead of hitting
// every processor at once.
#pragma once

#include "rng/dist.hpp"
#include "sim/model.hpp"

namespace clb::models {

struct DiurnalConfig {
  double p_peak = 0.7;     // generation probability at the top of the cycle
  double p_trough = 0.05;  // generation probability at the bottom
  double p_consume = 0.4;  // consumption probability (flat)
  std::uint64_t period = 64;  // cycle length in steps
  /// Per-processor phase shift as a fraction of the period per processor
  /// index (0 = every processor peaks together; 1.0/n = the peak sweeps the
  /// machine exactly once per period).
  double proc_skew = 0.0;
};

class DiurnalModel final : public sim::LoadModel {
 public:
  explicit DiurnalModel(DiurnalConfig cfg);

  [[nodiscard]] std::string name() const override { return "diurnal"; }

  sim::StepAction step_action(std::uint64_t seed, std::uint64_t proc,
                              std::uint64_t step, std::uint64_t load,
                              std::uint64_t system_load) override;

  [[nodiscard]] double expected_load_per_processor() const override;

  /// Instantaneous generation probability (exposed for tests; periodic in
  /// `step` with period cfg.period).
  [[nodiscard]] double rate_at(std::uint64_t proc, std::uint64_t step) const;

 private:
  DiurnalConfig cfg_;
  rng::BernoulliDraw consume_;
};

}  // namespace clb::models
