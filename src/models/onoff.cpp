#include "models/onoff.hpp"

#include <limits>

#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace clb::models {

namespace {
constexpr std::uint64_t kSalt = 0x6F6E6F66660000ULL;  // "onoff"
constexpr std::uint64_t kInitSalt = 0x6F6E696E697400ULL;  // "oninit"
}  // namespace

OnOffModel::OnOffModel(OnOffConfig cfg, std::uint64_t n)
    : cfg_(cfg),
      gen_(cfg.p_on),
      con_(cfg.p_consume),
      off_flip_(cfg.p_on_to_off),
      on_flip_(cfg.p_off_to_on),
      state_(n, 0) {
  CLB_CHECK(cfg.p_on > 0.0 && cfg.p_on <= 1.0, "on-off: p_on in (0,1]");
  CLB_CHECK(cfg.p_consume > 0.0 && cfg.p_consume <= 1.0,
            "on-off: p_consume in (0,1]");
  CLB_CHECK(cfg.p_on_to_off > 0.0 && cfg.p_off_to_on > 0.0,
            "on-off: flip probabilities must be positive");
  on_fraction_ =
      cfg.p_off_to_on / (cfg.p_off_to_on + cfg.p_on_to_off);
  CLB_CHECK(mean_rate() < cfg.p_consume,
            "on-off: mean generation must stay below consumption");
}

sim::StepAction OnOffModel::step_action(std::uint64_t seed,
                                        std::uint64_t proc,
                                        std::uint64_t step, std::uint64_t,
                                        std::uint64_t) {
  // Each processor (re)initialises its own state at step 0, so
  // engine.reset() replays identically and the parallel loop stays safe.
  if (step == 0) {
    rng::CounterRng init(seed, rng::hash_combine(proc, kInitSalt), 0);
    state_[proc] = rng::uniform01(init) < on_fraction_ ? 1 : 0;
  }
  rng::CounterRng rng(seed, rng::hash_combine(proc, kSalt), step);
  sim::StepAction act;
  if (state_[proc]) {
    act.generate = gen_(rng) ? 1 : 0;
    if (off_flip_(rng)) state_[proc] = 0;
  } else {
    (void)rng();  // keep lanes aligned between states
    if (on_flip_(rng)) state_[proc] = 1;
  }
  act.consume = con_(rng) ? 1 : 0;
  return act;
}

double OnOffModel::expected_load_per_processor() const {
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace clb::models
