#include "baselines/stale_shortest_queue.hpp"

#include "util/check.hpp"

namespace clb::baselines {

std::vector<sim::Transfer> stale_sq_decisions(
    std::uint64_t n, const std::vector<std::uint32_t>& fresh,
    const std::vector<std::uint32_t>& stale,
    const std::vector<std::uint8_t>& alive, const StaleSqConfig& cfg) {
  CLB_DCHECK(fresh.size() == n && stale.size() == n && alive.size() == n,
             "stale-sq: board sizes must match n");
  // Smallest and second-smallest stale loads among alive processors (the
  // runner-up serves senders that are themselves the minimum).
  std::uint64_t min1 = n, min2 = n;
  for (std::uint64_t q = 0; q < n; ++q) {
    if (!alive[q]) continue;
    if (min1 == n || stale[q] < stale[min1]) {
      min2 = min1;
      min1 = q;
    } else if (min2 == n || stale[q] < stale[min2]) {
      min2 = q;
    }
  }
  std::vector<sim::Transfer> tentative;
  if (min1 == n) return tentative;  // nobody alive
  for (std::uint64_t p = 0; p < n; ++p) {
    if (!alive[p]) continue;
    const std::uint64_t target = p == min1 ? min2 : min1;
    if (target == n) continue;  // p is the only alive processor
    const std::uint32_t own = fresh[p];
    if (own < stale[target] + cfg.gap) continue;
    const std::uint32_t count = (own - stale[target]) / 2;
    if (count == 0) continue;
    tentative.push_back(sim::Transfer{static_cast<std::uint32_t>(p),
                                      static_cast<std::uint32_t>(target),
                                      count});
  }
  // Suppress senders that are also receivers: application order must not
  // matter, and a sender must never ship tasks it just received.
  std::vector<std::uint8_t> is_receiver(n, 0);
  for (const sim::Transfer& t : tentative) is_receiver[t.to] = 1;
  std::vector<sim::Transfer> out;
  out.reserve(tentative.size());
  for (const sim::Transfer& t : tentative) {
    if (!is_receiver[t.from]) out.push_back(t);
  }
  return out;  // ascending `from` by construction (p scans upward)
}

StaleShortestQueue::StaleShortestQueue(StaleSqConfig cfg, std::uint64_t n,
                                       const core::LivenessSchedule* liveness)
    : cfg_(cfg), n_(n), live_(liveness) {
  CLB_CHECK(cfg_.staleness >= 1, "stale-sq: staleness >= 1");
  CLB_CHECK(n_ >= 1, "stale-sq: n >= 1");
  fresh_.resize(n_);
  stale_.assign(n_, 0);
  alive_.resize(n_);
}

void StaleShortestQueue::on_reset(sim::Engine&) { stale_.assign(n_, 0); }

void StaleShortestQueue::on_step(sim::Engine& engine) {
  const std::uint64_t step = engine.step();
  for (std::uint64_t p = 0; p < n_; ++p) {
    fresh_[p] = static_cast<std::uint32_t>(engine.load(p));
    alive_[p] = live_ == nullptr || live_->alive(p, step) ? 1 : 0;
  }
  if (step % cfg_.staleness == 0) {
    stale_ = fresh_;
    // One load broadcast per processor per refresh.
    engine.mutable_messages().control += n_;
  }
  const std::vector<sim::Transfer> ds =
      stale_sq_decisions(n_, fresh_, stale_, alive_, cfg_);
  for (const sim::Transfer& d : ds) {
    engine.schedule_transfer(d.from, d.to, d.count);
    engine.note_balance_initiation(d.from);
  }
}

}  // namespace clb::baselines
