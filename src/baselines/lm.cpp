#include "baselines/lm.hpp"

#include <algorithm>

#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"

namespace clb::baselines {

namespace {
constexpr std::uint64_t kSalt = 0x6C6D393300000ULL;  // "lm93"
}

LmBalancer::LmBalancer(LmConfig cfg) : cfg_(cfg) {
  CLB_CHECK(cfg_.partners >= 1 && cfg_.partners <= 16,
            "lm93: partners in [1,16]");
  CLB_CHECK(cfg_.min_trigger >= 2, "lm93: min_trigger >= 2");
}

void LmBalancer::on_reset(sim::Engine& engine) {
  anchor_.assign(engine.n(), 0);
}

void LmBalancer::on_step(sim::Engine& engine) {
  const std::uint64_t n = engine.n();
  auto& msg = engine.mutable_messages();
  for (std::uint64_t p = 0; p < n; ++p) {
    const std::uint64_t load = engine.load(p);
    const std::uint64_t trigger =
        std::max(cfg_.min_trigger, 2 * anchor_[p]);
    if (load < trigger) continue;

    rng::CounterRng rng(engine.seed(), rng::hash_combine(p, kSalt),
                        engine.step());
    // Probe `partners` random processors, learn their loads.
    std::uint64_t group_load = load;
    std::uint32_t chosen[16];
    std::uint64_t chosen_load[16];
    for (std::uint32_t j = 0; j < cfg_.partners; ++j) {
      auto q = static_cast<std::uint64_t>(rng::bounded(rng, n));
      if (q == p) q = (q + 1) % n;
      chosen[j] = static_cast<std::uint32_t>(q);
      chosen_load[j] = engine.load(q);
      group_load += chosen_load[j];
      msg.control += 2;  // probe + reply
    }
    const std::uint64_t avg = group_load / (cfg_.partners + 1);
    // Push our excess above the group average down to partners below it.
    std::uint64_t excess = load > avg ? load - avg : 0;
    for (std::uint32_t j = 0; j < cfg_.partners && excess > 0; ++j) {
      if (chosen_load[j] >= avg) continue;
      const std::uint64_t want = avg - chosen_load[j];
      const auto amount = static_cast<std::uint32_t>(std::min(excess, want));
      if (amount == 0) continue;
      engine.schedule_transfer(static_cast<std::uint32_t>(p), chosen[j],
                               amount);
      excess -= amount;
    }
    anchor_[p] = avg;  // load right after the action
    engine.note_balance_initiation(p);
  }
}

}  // namespace clb::baselines
