// Lauer95 baseline: assumes the system's average load `av` is known. A
// processor becomes active as soon as its load differs from av by c * av;
// an active processor repeatedly picks random partners until it finds an
// "applicative" one — a partner such that after equalizing *both* are no
// longer active — and then equalizes.
#pragma once

#include <memory>
#include <vector>

#include "gossip/push_sum.hpp"
#include "sim/balancer.hpp"

namespace clb::baselines {

struct LauerConfig {
  double c = 0.5;                ///< activity band half-width as fraction of av
  std::uint32_t max_probes = 8;  ///< random partners tried per step per active
  double min_band = 2.0;         ///< absolute floor for the band (small av)
  /// Estimate the average with push-sum gossip (Lauer's thesis extension)
  /// instead of reading it from the oracle. Costs one gossip message per
  /// processor per step. Estimation runs in epochs: restart from live
  /// loads, mix for `restart_every` rounds, freeze; decisions always use
  /// the latest frozen snapshot (no balancing during the first epoch).
  bool estimate_average = false;
  /// Epoch length: the estimator restarts from live loads every this many
  /// steps; decisions use the previous epoch's converged snapshot.
  std::uint64_t restart_every = 64;
};

class LauerBalancer final : public sim::Balancer {
 public:
  explicit LauerBalancer(LauerConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "lauer95"; }
  void on_step(sim::Engine& engine) override;
  void on_reset(sim::Engine& engine) override;

  /// Worst current relative estimation error vs the true average (NaN when
  /// estimation is off); exposed for tests and benches.
  [[nodiscard]] double estimation_error(const sim::Engine& engine) const;

 private:
  LauerConfig cfg_;
  // Per-step pairing reservation (a processor takes part in at most one
  // equalization per step — the handshake Lauer's protocol implies).
  std::vector<std::uint64_t> busy_stamp_;
  // Push-sum state (estimate_average mode).
  [[nodiscard]] double operative_estimate(std::uint64_t p,
                                          std::uint64_t step) const;
  std::unique_ptr<gossip::PushSumEstimator> estimator_;
  std::vector<double> last_load_;
  std::vector<double> frozen_;   // previous epoch's converged estimates
  std::uint64_t epoch_start_ = 0;
  bool have_frozen_ = false;
};

}  // namespace clb::baselines
