// The paper's Concluding Remarks thought experiment: "at the beginning of
// each interval of length log log n one could simply throw all load into the
// air and distribute it via the simple collision protocol. This would lead
// to load O(log log n) for all processors but ... the load of a processor
// would be spread among a lot of other processors."
//
// Realisation: every `interval` steps, every task in the system is sent to
// an i.u.a.r. processor. Max load drops to balls-into-bins levels
// (~ log n / log log n for load ~n, or O(log log n) with d-choice — we use
// plain single-choice scatter, the "simple" protocol), at the price of
// Theta(total load) messages per interval and destroyed locality.
#pragma once

#include "sim/balancer.hpp"

namespace clb::baselines {

struct AllInAirConfig {
  /// Steps between global redistributions; 0 = realise log2 log2 n at bind.
  std::uint64_t interval = 0;
  /// Use two-choice placement (pick the less loaded of two random targets)
  /// instead of single-choice scatter.
  bool two_choice = false;
};

class AllInAirBalancer final : public sim::Balancer {
 public:
  explicit AllInAirBalancer(AllInAirConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "all-in-air"; }
  void on_step(sim::Engine& engine) override;
  void on_reset(sim::Engine& engine) override;

 private:
  AllInAirConfig cfg_;
  std::uint64_t interval_ = 1;
};

}  // namespace clb::baselines
