#include "baselines/local_search.hpp"

#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "util/check.hpp"

namespace clb::baselines {

namespace {
constexpr std::uint64_t kSalt = 0x6C6F63736561ULL;  // "locsea"
}  // namespace

std::vector<sim::Transfer> local_search_decisions(
    std::uint64_t n, std::uint64_t seed, std::uint64_t step,
    const std::vector<std::uint32_t>& fresh,
    const std::vector<std::uint8_t>& alive, const LocalSearchConfig& cfg,
    std::vector<std::uint32_t>* probed) {
  CLB_DCHECK(fresh.size() == n && alive.size() == n,
             "local-search: board sizes must match n");
  std::vector<sim::Transfer> tentative;
  if (probed != nullptr) probed->clear();
  if (n < 2) return tentative;
  for (std::uint64_t p = 0; p < n; ++p) {
    if (!alive[p] || fresh[p] < cfg.min_load) continue;
    rng::CounterRng rng(seed, rng::hash_combine(p, kSalt), step);
    std::uint64_t q = rng::bounded(rng, n - 1);
    if (q >= p) ++q;  // uniform over the other n-1 processors
    if (probed != nullptr) probed->push_back(static_cast<std::uint32_t>(p));
    if (!alive[q]) continue;  // probe into a dead processor: wasted
    if (fresh[p] <= fresh[q] + 1) continue;
    const std::uint32_t count = (fresh[p] - fresh[q]) / 2;
    if (count == 0) continue;
    tentative.push_back(sim::Transfer{static_cast<std::uint32_t>(p),
                                      static_cast<std::uint32_t>(q), count});
  }
  // Suppress senders that are also receivers (see stale_sq_decisions).
  std::vector<std::uint8_t> is_receiver(n, 0);
  for (const sim::Transfer& t : tentative) is_receiver[t.to] = 1;
  std::vector<sim::Transfer> out;
  out.reserve(tentative.size());
  for (const sim::Transfer& t : tentative) {
    if (!is_receiver[t.from]) out.push_back(t);
  }
  return out;  // ascending `from` by construction
}

LocalSearchBalancer::LocalSearchBalancer(LocalSearchConfig cfg,
                                         std::uint64_t n,
                                         const core::LivenessSchedule* liveness)
    : cfg_(cfg), n_(n), live_(liveness) {
  CLB_CHECK(n_ >= 1, "local-search: n >= 1");
  fresh_.resize(n_);
  alive_.resize(n_);
}

void LocalSearchBalancer::on_step(sim::Engine& engine) {
  const std::uint64_t step = engine.step();
  for (std::uint64_t p = 0; p < n_; ++p) {
    fresh_[p] = static_cast<std::uint32_t>(engine.load(p));
    alive_[p] = live_ == nullptr || live_->alive(p, step) ? 1 : 0;
  }
  const std::vector<sim::Transfer> ds = local_search_decisions(
      n_, engine.seed(), step, fresh_, alive_, cfg_, &probed_);
  engine.mutable_messages().queries += probed_.size();
  for (const sim::Transfer& d : ds) {
    engine.schedule_transfer(d.from, d.to, d.count);
    engine.note_balance_initiation(d.from);
  }
}

}  // namespace clb::baselines
