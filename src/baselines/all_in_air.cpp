#include "baselines/all_in_air.hpp"

#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace clb::baselines {

namespace {
constexpr std::uint64_t kSalt = 0x616972736361ULL;  // "airsca"
}

AllInAirBalancer::AllInAirBalancer(AllInAirConfig cfg) : cfg_(cfg) {}

void AllInAirBalancer::on_reset(sim::Engine& engine) {
  interval_ = cfg_.interval;
  if (interval_ == 0) {
    interval_ = util::round_at_least(util::log2log2(engine.n()), 1);
  }
}

void AllInAirBalancer::on_step(sim::Engine& engine) {
  if (engine.step() % interval_ != 0) return;
  const std::uint64_t n = engine.n();
  auto& msg = engine.mutable_messages();
  auto tasks = engine.drain_all();
  rng::CounterRng rng(engine.seed(), kSalt, engine.step());
  for (const sim::Task& t : tasks) {
    auto target = static_cast<std::uint32_t>(rng::bounded(rng, n));
    if (cfg_.two_choice) {
      const auto alt = static_cast<std::uint32_t>(rng::bounded(rng, n));
      if (engine.load(alt) < engine.load(target)) target = alt;
      ++msg.control;  // the extra load query
    }
    engine.deposit(target, t);
  }
  msg.tasks_moved += tasks.size();
  msg.transfers += tasks.empty() ? 0 : 1;
  msg.control += tasks.size();  // one routing message per task
}

}  // namespace clb::baselines
