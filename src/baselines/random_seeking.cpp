#include "baselines/random_seeking.hpp"

#include <cmath>
#include <limits>

#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"

namespace clb::baselines {

namespace {
constexpr std::uint64_t kSalt = 0x7365656B657273ULL;  // "seekers"
}

RandomSeekingBalancer::RandomSeekingBalancer(RandomSeekingConfig cfg)
    : cfg_(cfg) {
  CLB_CHECK(cfg_.lo_watermark < cfg_.hi_watermark,
            "random-seeking: lo < hi watermark");
  CLB_CHECK(cfg_.hop_limit >= 1, "random-seeking: hop_limit >= 1");
}

void RandomSeekingBalancer::on_step(sim::Engine& engine) {
  const std::uint64_t n = engine.n();
  auto& msg = engine.mutable_messages();
  for (std::uint64_t p = 0; p < n; ++p) {
    const std::uint64_t load = engine.load(p);
    if (load < cfg_.hi_watermark) continue;
    rng::CounterRng rng(engine.seed(), rng::hash_combine(p, kSalt),
                        engine.step());
    for (std::uint32_t hop = 1; hop <= cfg_.hop_limit; ++hop) {
      auto q = static_cast<std::uint64_t>(rng::bounded(rng, n));
      if (q == p) q = (q + 1) % n;
      ++msg.control;  // one probe hop
      if (engine.load(q) <= cfg_.lo_watermark) {
        const auto excess = load - cfg_.lo_watermark;
        const auto amount = static_cast<std::uint32_t>(excess / 2);
        if (amount > 0) {
          engine.schedule_transfer(static_cast<std::uint32_t>(p),
                                   static_cast<std::uint32_t>(q), amount);
          engine.note_balance_initiation(p);
        }
        ++successful_probes_;
        visits_on_success_ += hop;
        break;
      }
    }
  }
}

double RandomSeekingBalancer::mean_visits_to_sink() const {
  if (successful_probes_ == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return static_cast<double>(visits_on_success_) /
         static_cast<double>(successful_probes_);
}

}  // namespace clb::baselines
