#include "baselines/lauer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"

namespace clb::baselines {

namespace {
constexpr std::uint64_t kSalt = 0x6C61756572393500ULL;  // "lauer95"
}

LauerBalancer::LauerBalancer(LauerConfig cfg) : cfg_(cfg) {
  CLB_CHECK(cfg_.c > 0.0, "lauer95: c > 0");
  CLB_CHECK(cfg_.max_probes >= 1, "lauer95: max_probes >= 1");
}

void LauerBalancer::on_reset(sim::Engine& engine) {
  busy_stamp_.assign(engine.n(), ~0ULL);
  epoch_start_ = 0;
  have_frozen_ = false;
  if (cfg_.estimate_average) {
    estimator_ = std::make_unique<gossip::PushSumEstimator>(engine.n());
    last_load_.assign(engine.n(), 0.0);
    frozen_.assign(engine.n(), 0.0);
  }
}

double LauerBalancer::operative_estimate(std::uint64_t p,
                                         std::uint64_t) const {
  // Processors act on the previous epoch's *converged* estimate: the live
  // estimator is still mixing (and mid-epoch drift injection makes
  // low-weight nodes spike), whereas the system average drifts slowly in
  // steady state, so an epoch-old snapshot is accurate.
  return frozen_[p];
}

double LauerBalancer::estimation_error(const sim::Engine& engine) const {
  if (!estimator_) return std::numeric_limits<double>::quiet_NaN();
  const double truth = static_cast<double>(engine.total_load()) /
                       static_cast<double>(engine.n());
  const double denom = std::max(1.0, truth);
  double worst = 0;
  for (std::uint64_t p = 0; p < engine.n(); ++p) {
    worst = std::max(worst, std::abs(operative_estimate(p, engine.step()) -
                                     truth) /
                                denom);
  }
  return worst;
}

void LauerBalancer::on_step(sim::Engine& engine) {
  const std::uint64_t n = engine.n();
  if (busy_stamp_.size() != n) busy_stamp_.assign(n, ~0ULL);
  const std::uint64_t step = engine.step();
  auto busy = [&](std::uint64_t x) { return busy_stamp_[x] == step; };
  auto& msg = engine.mutable_messages();

  // The algorithm assumes av is known. By default the simulator grants it
  // for free; in estimate_average mode each processor instead tracks its
  // own push-sum estimate (one gossip message per processor per step).
  const double av_oracle =
      static_cast<double>(engine.total_load()) / static_cast<double>(n);
  if (estimator_) {
    const bool epoch_boundary =
        step == 0 || step - epoch_start_ >= cfg_.restart_every;
    if (epoch_boundary) {
      if (step != 0) {
        for (std::uint64_t p = 0; p < n; ++p) {
          frozen_[p] = std::max(0.0, estimator_->estimate(p));
        }
        have_frozen_ = true;
      }
      epoch_start_ = step;
      for (std::uint64_t p = 0; p < n; ++p) {
        last_load_[p] = static_cast<double>(engine.load(p));
      }
      estimator_->restart(last_load_);
    } else {
      estimator_->round(engine.seed(), step);
    }
    msg.control += n;  // one gossip push per processor
    if (!have_frozen_) return;  // first epoch still mixing
  }
  auto local_average = [&](std::uint64_t p) {
    if (!estimator_) return av_oracle;
    return operative_estimate(p, step);
  };

  for (std::uint64_t p = 0; p < n; ++p) {
    if (busy(p)) continue;
    // Each processor judges activity against its own view of the average
    // (oracle-global, or its push-sum estimate).
    const double av = local_average(p);
    const double band = std::max(cfg_.min_band, cfg_.c * av);
    auto active_with = [&](double load) { return std::abs(load - av) > band; };
    const auto lp = static_cast<double>(engine.load(p));
    if (!active_with(lp)) continue;
    rng::CounterRng rng(engine.seed(), rng::hash_combine(p, kSalt),
                        engine.step());
    for (std::uint32_t probe = 0; probe < cfg_.max_probes; ++probe) {
      auto q = static_cast<std::uint64_t>(rng::bounded(rng, n));
      if (q == p) q = (q + 1) % n;
      msg.control += 2;  // probe + reply
      if (busy(q)) continue;  // already paired this step
      const auto lq = static_cast<double>(engine.load(q));
      const double half = (lp + lq) / 2.0;
      // Applicative: after equalizing, neither side remains active.
      if (active_with(std::floor(half)) && active_with(std::ceil(half))) {
        continue;
      }
      const auto lpi = engine.load(p);
      const auto lqi = engine.load(q);
      if (lpi == lqi) break;
      const std::uint64_t hi = std::max(lpi, lqi);
      const std::uint64_t lo = std::min(lpi, lqi);
      const auto amount = static_cast<std::uint32_t>((hi - lo) / 2);
      if (amount > 0) {
        if (lpi > lqi) {
          engine.schedule_transfer(static_cast<std::uint32_t>(p),
                                   static_cast<std::uint32_t>(q), amount);
        } else {
          engine.schedule_transfer(static_cast<std::uint32_t>(q),
                                   static_cast<std::uint32_t>(p), amount);
        }
      }
      busy_stamp_[p] = step;
      busy_stamp_[q] = step;
      engine.note_balance_initiation(p);
      break;
    }
  }
}

}  // namespace clb::baselines
