// Randomized local-search baseline after Berenbrink, Kling et al.
// (arXiv:1706.09997, "self-stabilizing" balls-into-bins by local search):
// each step, every processor holding at least `min_load` tasks probes one
// uniformly random other processor and, if the probe reveals a gap of more
// than one task, moves half the difference across. No global coordination,
// no load broadcasts — just pairwise diffusion, the natural successor
// baseline to the SPAA'98 threshold protocol.
//
// Like the stale-SQ baseline, the decision rule is a pure function of
// (seed, step, fresh loads, aliveness, config) shared verbatim by the
// serial sim::Balancer and rt::RtPolicy::kLocalSearch, so engine↔rt
// lockstep bit-identity is provable.
#pragma once

#include <cstdint>
#include <vector>

#include "core/liveness.hpp"
#include "sim/balancer.hpp"
#include "sim/engine.hpp"

namespace clb::baselines {

struct LocalSearchConfig {
  /// A processor probes only when its own load is at least this.
  std::uint32_t min_load = 2;
};

/// The shared decision rule. Each alive processor p with
/// fresh[p] >= min_load draws a partner q uniformly from the other n-1
/// processors (counter-RNG on (seed, p, step): identical on every path and
/// worker count); dead partners void the probe. When fresh[p] >
/// fresh[q] + 1 the tentative move is (fresh[p] - fresh[q]) / 2 tasks.
/// Tentative senders that are also receivers are suppressed, so the
/// returned transfers (ascending by sender, one per sender, counts <=
/// fresh[from]) apply identically in any order with no clamping.
///
/// `probed`, when non-null, receives the ids of processors that spent a
/// probe this step (for message accounting: one query per probe).
std::vector<sim::Transfer> local_search_decisions(
    std::uint64_t n, std::uint64_t seed, std::uint64_t step,
    const std::vector<std::uint32_t>& fresh,
    const std::vector<std::uint8_t>& alive, const LocalSearchConfig& cfg,
    std::vector<std::uint32_t>* probed = nullptr);

/// Serial engine-side balancer wrapping the shared rule.
class LocalSearchBalancer final : public sim::Balancer {
 public:
  LocalSearchBalancer(LocalSearchConfig cfg, std::uint64_t n,
                      const core::LivenessSchedule* liveness = nullptr);

  [[nodiscard]] std::string name() const override { return "local-search"; }
  void on_step(sim::Engine& engine) override;

 private:
  LocalSearchConfig cfg_;
  std::uint64_t n_;
  const core::LivenessSchedule* live_;
  std::vector<std::uint32_t> fresh_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint32_t> probed_;
};

}  // namespace clb::baselines
