// LM93 baseline (Lüling & Monien, SPAA'93): a processor initiates a
// balancing action when its load has doubled since its last balancing
// action; it then chooses a constant number of processors at random and
// equalizes load with them.
#pragma once

#include <vector>

#include "sim/balancer.hpp"

namespace clb::baselines {

struct LmConfig {
  std::uint32_t partners = 2;      ///< random processors contacted per action
  std::uint64_t min_trigger = 4;   ///< ignore doubling below this load
};

class LmBalancer final : public sim::Balancer {
 public:
  explicit LmBalancer(LmConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "lm93"; }
  void on_step(sim::Engine& engine) override;
  void on_reset(sim::Engine& engine) override;

 private:
  LmConfig cfg_;
  /// Load each processor had right after its last balancing action.
  std::vector<std::uint64_t> anchor_;
};

}  // namespace clb::baselines
