// RSU91 baseline (Rudolph, Slivkin-Allalouf, Upfal, SPAA'91): a simple
// randomized scheme that equalizes the load of two processors in one step.
//
// Faithful-in-spirit realisation: at each step every processor, with
// probability `p_attempt` (RSU use a load-dependent probability; the
// fixed-probability variant is their simplest form), picks one partner
// i.u.a.r. and the pair equalizes when their loads differ by at least
// `min_diff`. Each attempt costs a probe + reply message; an equalization
// moves floor(diff/2) tasks.
#pragma once

#include "rng/dist.hpp"
#include "sim/balancer.hpp"

namespace clb::baselines {

struct RsuConfig {
  double p_attempt = 0.05;      ///< per-processor attempt probability/step
  std::uint64_t min_diff = 2;   ///< equalize only when |l_p - l_q| >= this
  bool load_scaled = true;      ///< attempt prob scaled as p_attempt*load/(1+load)
};

class RsuBalancer final : public sim::Balancer {
 public:
  explicit RsuBalancer(RsuConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "rsu91"; }
  void on_step(sim::Engine& engine) override;

 private:
  RsuConfig cfg_;
};

}  // namespace clb::baselines
