#include "baselines/rsu.hpp"

#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"

namespace clb::baselines {

namespace {
constexpr std::uint64_t kSalt = 0x72737539310000ULL;  // "rsu91"
}

RsuBalancer::RsuBalancer(RsuConfig cfg) : cfg_(cfg) {
  CLB_CHECK(cfg_.p_attempt > 0.0 && cfg_.p_attempt <= 1.0,
            "rsu91: p_attempt in (0,1]");
  CLB_CHECK(cfg_.min_diff >= 2, "rsu91: min_diff >= 2");
}

void RsuBalancer::on_step(sim::Engine& engine) {
  const std::uint64_t n = engine.n();
  auto& msg = engine.mutable_messages();
  for (std::uint64_t p = 0; p < n; ++p) {
    rng::CounterRng rng(engine.seed(), rng::hash_combine(p, kSalt),
                        engine.step());
    double prob = cfg_.p_attempt;
    if (cfg_.load_scaled) {
      const auto l = static_cast<double>(engine.load(p));
      prob *= l / (1.0 + l);  // idle processors rarely probe
    }
    if (!(rng::uniform01(rng) < prob)) continue;
    auto q = static_cast<std::uint64_t>(rng::bounded(rng, n));
    if (q == p) q = (q + 1) % n;
    msg.control += 2;  // probe + load reply
    const std::uint64_t lp = engine.load(p);
    const std::uint64_t lq = engine.load(q);
    const std::uint64_t hi = lp > lq ? lp : lq;
    const std::uint64_t lo = lp > lq ? lq : lp;
    if (hi - lo < cfg_.min_diff) continue;
    const auto amount = static_cast<std::uint32_t>((hi - lo) / 2);
    if (lp > lq) {
      engine.schedule_transfer(static_cast<std::uint32_t>(p),
                               static_cast<std::uint32_t>(q), amount);
    } else {
      engine.schedule_transfer(static_cast<std::uint32_t>(q),
                               static_cast<std::uint32_t>(p), amount);
    }
    engine.note_balance_initiation(p);
  }
}

}  // namespace clb::baselines
