// Stale-information shortest-queue baseline (production workload zoo).
//
// The production pattern: every `staleness` steps all processors broadcast
// their loads; between broadcasts everyone routes excess work to whichever
// processor *looked* shortest at the last broadcast. With staleness 1 this
// is classic shortest-queue; as staleness grows every overloaded processor
// herds onto the same stale minimum — the canonical failure mode of
// load-information balancing, and the foil the threshold protocol's
// load-oblivious matching is measured against (EXP-25).
//
// The decision rule is a *pure function* of (fresh loads, stale loads,
// aliveness, config), shared verbatim by the serial sim::Balancer below and
// by rt::RtPolicy::kStaleSq — the property that makes engine↔rt lockstep
// bit-identity provable for this baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "core/liveness.hpp"
#include "sim/balancer.hpp"
#include "sim/engine.hpp"

namespace clb::baselines {

struct StaleSqConfig {
  /// Steps between load broadcasts (1 = always-fresh shortest queue).
  std::uint64_t staleness = 8;
  /// Minimum excess (own load - stale minimum) before a processor acts.
  std::uint32_t gap = 2;
};

/// The shared decision rule. Every processor p (alive, with fresh load
/// `fresh[p]` — a processor always knows its *own* load exactly) targets the
/// alive processor with the smallest *stale* load (ties to the smallest
/// index; self excluded) and, when fresh[p] >= stale[target] + gap, offers
/// (fresh[p] - stale[target]) / 2 tasks.
///
/// Returned transfers are sorted ascending by sender with at most one per
/// sender, no sender that is also a receiver, and counts <= fresh[from] —
/// so engine-side application never clamps and rt-side send-time pops see
/// exactly the loads the decision assumed, independent of application
/// order.
std::vector<sim::Transfer> stale_sq_decisions(
    std::uint64_t n, const std::vector<std::uint32_t>& fresh,
    const std::vector<std::uint32_t>& stale,
    const std::vector<std::uint8_t>& alive, const StaleSqConfig& cfg);

/// Serial engine-side balancer: keeps the stale board, refreshes it on
/// broadcast steps (booking n control messages), and schedules the shared
/// decisions.
class StaleShortestQueue final : public sim::Balancer {
 public:
  StaleShortestQueue(StaleSqConfig cfg, std::uint64_t n,
                     const core::LivenessSchedule* liveness = nullptr);

  [[nodiscard]] std::string name() const override { return "stale-sq"; }
  void on_step(sim::Engine& engine) override;
  void on_reset(sim::Engine& engine) override;

  [[nodiscard]] const std::vector<std::uint32_t>& stale_board() const {
    return stale_;
  }

 private:
  StaleSqConfig cfg_;
  std::uint64_t n_;
  const core::LivenessSchedule* live_;
  std::vector<std::uint32_t> fresh_;
  std::vector<std::uint32_t> stale_;
  std::vector<std::uint8_t> alive_;
};

}  // namespace clb::baselines
