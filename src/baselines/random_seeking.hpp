// MD96 baseline (Mahapatra & Dutt, IPPS'96), "random seeking": source
// (overloaded) processors seek out sink (underloaded) processors by flinging
// probe messages; a probe walks random processors until it finds a sink (or
// gives up), then the source ships half of its excess there.
#pragma once

#include "sim/balancer.hpp"

namespace clb::baselines {

struct RandomSeekingConfig {
  std::uint64_t hi_watermark = 8;  ///< load >= this: source
  std::uint64_t lo_watermark = 2;  ///< load <= this: sink
  std::uint32_t hop_limit = 8;     ///< max probe visits before giving up
};

class RandomSeekingBalancer final : public sim::Balancer {
 public:
  explicit RandomSeekingBalancer(RandomSeekingConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "random-seeking"; }
  void on_step(sim::Engine& engine) override;

  /// Average probe visits needed to allocate a sink (the statistic MD96
  /// bound analytically); NaN until a probe has succeeded.
  [[nodiscard]] double mean_visits_to_sink() const;

 private:
  RandomSeekingConfig cfg_;
  std::uint64_t successful_probes_ = 0;
  std::uint64_t visits_on_success_ = 0;
};

}  // namespace clb::baselines
