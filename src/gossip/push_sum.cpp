#include "gossip/push_sum.hpp"

#include <cmath>

#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"

namespace clb::gossip {

namespace {
constexpr std::uint64_t kSalt = 0x7075736873756DULL;  // "pushsum"
}

PushSumEstimator::PushSumEstimator(std::uint64_t n)
    : sum_(n, 0.0), weight_(n, 1.0), in_sum_(n, 0.0), in_weight_(n, 0.0) {
  CLB_CHECK(n >= 2, "push-sum needs n >= 2");
}

void PushSumEstimator::restart(const std::vector<double>& values) {
  CLB_CHECK(values.size() == sum_.size(), "value vector size mismatch");
  sum_ = values;
  std::fill(weight_.begin(), weight_.end(), 1.0);
}

void PushSumEstimator::round(std::uint64_t seed, std::uint64_t round_index,
                             const std::vector<double>* value_drift) {
  const std::uint64_t n = sum_.size();
  if (value_drift != nullptr) {
    CLB_CHECK(value_drift->size() == n, "drift vector size mismatch");
    for (std::uint64_t i = 0; i < n; ++i) sum_[i] += (*value_drift)[i];
  }
  std::fill(in_sum_.begin(), in_sum_.end(), 0.0);
  std::fill(in_weight_.begin(), in_weight_.end(), 0.0);
  for (std::uint64_t i = 0; i < n; ++i) {
    rng::CounterRng rng(seed, rng::hash_combine(i, kSalt), round_index);
    auto partner = static_cast<std::uint64_t>(rng::bounded(rng, n));
    if (partner == i) partner = (partner + 1) % n;
    const double half_sum = sum_[i] / 2.0;
    const double half_weight = weight_[i] / 2.0;
    sum_[i] = half_sum;
    weight_[i] = half_weight;
    in_sum_[partner] += half_sum;
    in_weight_[partner] += half_weight;
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    sum_[i] += in_sum_[i];
    weight_[i] += in_weight_[i];
  }
}

double PushSumEstimator::max_relative_error(double truth) const {
  double worst = 0;
  const double denom = std::max(1.0, std::abs(truth));
  for (std::uint64_t i = 0; i < sum_.size(); ++i) {
    worst = std::max(worst, std::abs(estimate(i) - truth) / denom);
  }
  return worst;
}

}  // namespace clb::gossip
