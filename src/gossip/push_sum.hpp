// Push-sum gossip averaging (Kempe, Dobra, Gehrke '03 — the standard
// decentralized way to estimate a global average).
//
// Lauer's algorithm [Lau95] assumes the system's average load is known; his
// thesis extends it with estimation techniques. This substrate provides
// that: each processor keeps a (sum, weight) pair; per round it halves the
// pair, keeps one half and sends the other to an i.u.a.r. partner; the
// ratio sum/weight converges to the true average in O(log n) rounds. The
// LauerBalancer's `estimated_average` mode runs one push-sum round per step
// against the live loads.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace clb::gossip {

class PushSumEstimator {
 public:
  explicit PushSumEstimator(std::uint64_t n);

  [[nodiscard]] std::uint64_t n() const { return sum_.size(); }

  /// Re-seeds every processor's pair from its current local value (weight
  /// 1). Call once, or whenever estimates should restart from scratch.
  void restart(const std::vector<double>& values);

  /// One gossip round: each processor keeps half of its (sum, weight) pair
  /// and pushes the other half to an i.u.a.r. partner. `value_drift[i]`,
  /// when non-null, is added to processor i's sum first so the estimate
  /// tracks a *changing* quantity (each new task adds +1, each consumed
  /// task -1). Messages are counted by the caller (one per processor).
  void round(std::uint64_t seed, std::uint64_t round_index,
             const std::vector<double>* value_drift = nullptr);

  /// Processor i's current estimate of the global average.
  [[nodiscard]] double estimate(std::uint64_t i) const {
    return weight_[i] > 0 ? sum_[i] / weight_[i] : 0.0;
  }

  /// Max over processors of |estimate - truth| / max(1, truth).
  [[nodiscard]] double max_relative_error(double truth) const;

 private:
  std::vector<double> sum_;
  std::vector<double> weight_;
  std::vector<double> in_sum_;
  std::vector<double> in_weight_;
};

}  // namespace clb::gossip
