// xoshiro256** 1.0 (Blackman & Vigna) — fast general-purpose sequential
// generator, UniformRandomBitGenerator-compatible. Used where a single
// sequential stream is fine (static balls-into-bins games, DES kernel).
#pragma once

#include <cstdint>

#include "rng/splitmix64.hpp"

namespace clb::rng {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5EEDF00DULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// 2^128 steps forward; gives non-overlapping subsequences for parallel use.
  void jump() {
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (1ULL << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        (void)(*this)();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace clb::rng
