// Distribution helpers over UniformRandomBitGenerator-style engines.
//
// All of these are branch-light and allocation-free; they are the only
// randomness primitives used inside simulator hot loops.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace clb::rng {

/// Unbiased uniform integer in [0, n) — Lemire's multiply-shift rejection.
template <typename Rng>
std::uint64_t bounded(Rng& rng, std::uint64_t n) {
  CLB_DCHECK(n > 0, "bounded(n) requires n > 0");
  __extension__ using u128 = unsigned __int128;
  std::uint64_t x = rng();
  u128 m = static_cast<u128>(x) * static_cast<u128>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = rng();
      m = static_cast<u128>(x) * static_cast<u128>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Uniform double in [0, 1) with 53 random bits.
template <typename Rng>
double uniform01(Rng& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Precomputed Bernoulli(p) draw: compares one u64 against a threshold.
class BernoulliDraw {
 public:
  explicit BernoulliDraw(double p) {
    CLB_CHECK(p >= 0.0 && p <= 1.0, "Bernoulli p must be in [0,1]");
    if (p >= 1.0) {
      threshold_ = ~0ULL;
      always_ = true;
    } else {
      threshold_ = static_cast<std::uint64_t>(p * 0x1.0p64);
    }
  }

  template <typename Rng>
  bool operator()(Rng& rng) const {
    return always_ || rng() < threshold_;
  }

 private:
  std::uint64_t threshold_ = 0;
  bool always_ = false;
};

/// Samples the paper's Geometric generation model: returns i in {1..k} with
/// probability 2^-(i+1), else 0 (probability > 1/2).
///
/// Implementation: for a uniform u64 draw x, u = x/2^64 lies in
/// [2^-(j+1), 2^-j) iff countl_zero(x) == j; so the number of leading zero
/// bits *is* the geometric index.
template <typename Rng>
std::uint32_t truncated_geometric(Rng& rng, std::uint32_t k) {
  const std::uint64_t x = rng();
  const auto j = static_cast<std::uint32_t>(std::countl_zero(x));
  return (j >= 1 && j <= k) ? j : 0;
}

/// Geometric(p) number of failures before first success, capped at `cap`.
template <typename Rng>
std::uint64_t geometric(Rng& rng, double p, std::uint64_t cap = ~0ULL) {
  CLB_DCHECK(p > 0.0 && p <= 1.0, "geometric p in (0,1]");
  const double u = uniform01(rng);
  const double g = std::floor(std::log1p(-u) / std::log1p(-p));
  if (!(g >= 0)) return 0;
  return g > static_cast<double>(cap) ? cap : static_cast<std::uint64_t>(g);
}

/// Small discrete distribution over {0..m-1} given a pmf; sampling is a
/// linear cumulative scan (intended for m <= ~16, e.g. the Multi model).
class DiscreteDraw {
 public:
  explicit DiscreteDraw(const std::vector<double>& pmf) {
    CLB_CHECK(!pmf.empty(), "pmf must be non-empty");
    double total = 0;
    for (double p : pmf) {
      CLB_CHECK(p >= 0.0, "pmf entries must be non-negative");
      total += p;
    }
    CLB_CHECK(total > 0.0, "pmf must have positive mass");
    cumulative_.reserve(pmf.size());
    double acc = 0;
    for (double p : pmf) {
      acc += p / total;
      cumulative_.push_back(acc);
    }
    cumulative_.back() = 1.0;  // guard against rounding
  }

  template <typename Rng>
  std::uint32_t operator()(Rng& rng) const {
    const double u = uniform01(rng);
    for (std::uint32_t i = 0; i < cumulative_.size(); ++i) {
      if (u < cumulative_[i]) return i;
    }
    return static_cast<std::uint32_t>(cumulative_.size() - 1);
  }

  [[nodiscard]] double mean() const {
    double m = 0, prev = 0;
    for (std::size_t i = 0; i < cumulative_.size(); ++i) {
      m += static_cast<double>(i) * (cumulative_[i] - prev);
      prev = cumulative_[i];
    }
    return m;
  }

 private:
  std::vector<double> cumulative_;
};

/// Exponential(rate) variate.
template <typename Rng>
double exponential(Rng& rng, double rate) {
  CLB_DCHECK(rate > 0, "exponential rate must be > 0");
  return -std::log1p(-uniform01(rng)) / rate;
}

}  // namespace clb::rng
