// SplitMix64: the standard 64-bit mixing function (Steele/Lea/Flood).
//
// Used for (a) seeding the other generators, (b) hashing tuples of ids into
// statistically independent keys. Not used directly as a simulation stream.
#pragma once

#include <cstdint>

namespace clb::rng {

/// One SplitMix64 step on state `x` (returns mixed output, advances x).
constexpr std::uint64_t splitmix64_next(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a single value (finalizer only).
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Hash-combines two 64-bit values into one well-mixed key. Associative use
/// (fold over a tuple) gives per-(seed, id, step, ...) independent keys.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

}  // namespace clb::rng
