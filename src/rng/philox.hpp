// Philox4x32-10 counter-based RNG (Salmon et al., SC'11).
//
// A counter-based generator maps (key, counter) -> 128 random bits with no
// sequential state, which is exactly what a deterministic parallel simulator
// needs: the stream for processor p at step t is keyed by (seed, p) with
// counter t, so any thread can draw p's randomness without coordination and
// the simulation result is identical for every worker count.
#pragma once

#include <array>
#include <cstdint>

#include "rng/splitmix64.hpp"

namespace clb::rng {

/// Raw Philox4x32-10 block function: 4x32 counter + 2x32 key -> 4x32 output.
struct Philox4x32 {
  static constexpr int kRounds = 10;
  static constexpr std::uint32_t kM0 = 0xD2511F53u;
  static constexpr std::uint32_t kM1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kW0 = 0x9E3779B9u;  // golden ratio
  static constexpr std::uint32_t kW1 = 0xBB67AE85u;  // sqrt(3)-1

  static std::array<std::uint32_t, 4> block(std::array<std::uint32_t, 4> ctr,
                                            std::array<std::uint32_t, 2> key) {
    for (int round = 0; round < kRounds; ++round) {
      const std::uint64_t p0 = static_cast<std::uint64_t>(kM0) * ctr[0];
      const std::uint64_t p1 = static_cast<std::uint64_t>(kM1) * ctr[2];
      const auto hi0 = static_cast<std::uint32_t>(p0 >> 32);
      const auto lo0 = static_cast<std::uint32_t>(p0);
      const auto hi1 = static_cast<std::uint32_t>(p1 >> 32);
      const auto lo1 = static_cast<std::uint32_t>(p1);
      ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
      key[0] += kW0;
      key[1] += kW1;
    }
    return ctr;
  }
};

/// UniformRandomBitGenerator over Philox blocks for a fixed (key, counter)
/// pair: yields two u64 per block, then bumps an internal block index.
///
/// Typical simulator use:
///   CounterRng rng(seed, processor_id, step);
///   if (draw_bernoulli(rng, p)) ...
class CounterRng {
 public:
  using result_type = std::uint64_t;

  /// Key = mix(seed, stream); counter = (event, block-index).
  CounterRng(std::uint64_t seed, std::uint64_t stream, std::uint64_t event = 0)
      : event_(event) {
    const std::uint64_t k = hash_combine(seed, stream);
    key_ = {static_cast<std::uint32_t>(k), static_cast<std::uint32_t>(k >> 32)};
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Re-positions the stream at a new event (e.g. time step); subsequent
  /// draws are a deterministic function of (seed, stream, event).
  void set_event(std::uint64_t event) {
    event_ = event;
    block_ = 0;
    have_second_ = false;
  }

  result_type operator()() {
    if (have_second_) {
      have_second_ = false;
      return second_;
    }
    const std::array<std::uint32_t, 4> ctr = {
        static_cast<std::uint32_t>(event_),
        static_cast<std::uint32_t>(event_ >> 32),
        static_cast<std::uint32_t>(block_),
        static_cast<std::uint32_t>(block_ >> 32)};
    const auto out = Philox4x32::block(ctr, key_);
    ++block_;
    second_ = (static_cast<std::uint64_t>(out[2]) << 32) | out[3];
    have_second_ = true;
    return (static_cast<std::uint64_t>(out[0]) << 32) | out[1];
  }

 private:
  std::array<std::uint32_t, 2> key_{};
  std::uint64_t event_ = 0;
  std::uint64_t block_ = 0;
  std::uint64_t second_ = 0;
  bool have_second_ = false;
};

}  // namespace clb::rng
