#include "core/threshold_balancer.hpp"

#include <algorithm>

#include "obs/views.hpp"
#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace clb::core {

namespace {
constexpr std::uint64_t kGameSalt = 0x70686173656761ULL;     // "phasega"
constexpr std::uint64_t kPreroundSalt = 0x707265726F756EULL; // "preroun"
}  // namespace

ThresholdBalancer::ThresholdBalancer(ThresholdBalancerConfig cfg)
    : cfg_(cfg) {
  CLB_CHECK(cfg_.params.n >= 4, "balancer params must be realised (from_n)");
  CLB_CHECK(cfg_.game.b >= 1 && cfg_.game.b <= 2,
            "query trees are binary: b must be 1 or 2");
}

void ThresholdBalancer::on_reset(sim::Engine& engine) {
  CLB_CHECK(engine.n() == cfg_.params.n,
            "balancer was parameterised for a different n");
  ensure_arrays(engine.n());
  collision::CollisionConfig game_cfg = cfg_.game;
  game_cfg.trace = cfg_.trace;
  game_ = std::make_unique<collision::CollisionGame>(engine.n(), game_cfg);
  last_phase_ = PhaseStats{};
  open_phase_ = PhaseStats{};
  phase_open_ = false;
  levels_run_ = 0;
  agg_ = AggregateStats{};
  requests_per_root_hist_.clear();
  phase_count_ = 0;
  streams_.clear();
}

void ThresholdBalancer::ensure_arrays(std::uint64_t n) {
  assign_stamp_.assign(n, 0);
  light_stamp_.assign(n, 0);
  matched_stamp_.assign(n, 0);
  matched_partner_.assign(n, 0);
  root_req_stamp_.assign(n, 0);
  root_req_count_.assign(n, 0);
  epoch_ = 0;
}

void ThresholdBalancer::bump_epoch() {
  if (epoch_ == 0xFFFFFFFFu) ensure_arrays(assign_stamp_.size());
  ++epoch_;
}

void ThresholdBalancer::on_step(sim::Engine& engine) {
  const bool phase_boundary = engine.step() % cfg_.params.phase_len == 0;
  if (phase_boundary) {
    if (phase_open_) finalize_phase(engine);
    begin_phase(engine);
    if (cfg_.execution == PhaseExecution::kAtomic) {
      run_levels(engine, cfg_.params.tree_depth);
      finalize_phase(engine);
    }
  }
  if (cfg_.execution == PhaseExecution::kSpread && phase_open_) {
    // Distribute the remaining levels evenly over the remaining phase steps.
    const std::uint64_t step_in_phase = engine.step() % cfg_.params.phase_len;
    const std::uint64_t steps_left = cfg_.params.phase_len - step_in_phase;
    const std::uint32_t levels_left = cfg_.params.tree_depth - levels_run_;
    if (levels_left > 0) {
      run_levels(engine,
                 static_cast<std::uint32_t>(
                     util::ceil_div(levels_left, steps_left)));
    }
  }
  if (cfg_.streaming_transfers) pump_streams(engine);
}

void ThresholdBalancer::issue_transfer(sim::Engine& engine,
                                       std::uint32_t root,
                                       std::uint32_t partner) {
  // In weight mode, transfer_amount is a weight budget: move the fewest
  // newest tasks whose cumulative weight reaches it.
  const auto count = static_cast<std::uint32_t>(
      cfg_.weight_based
          ? engine.transfer_count_for_weight(root, cfg_.params.transfer_amount)
          : cfg_.params.transfer_amount);
  if (count == 0) return;
  if (cfg_.streaming_transfers) {
    streams_.push_back(Stream{root, partner, count});
  } else {
    engine.schedule_transfer(root, partner, count);
  }
}

void ThresholdBalancer::pump_streams(sim::Engine& engine) {
  std::size_t w = 0;
  for (Stream& s : streams_) {
    engine.schedule_transfer(s.from, s.to, 1);
    if (--s.remaining > 0) streams_[w++] = s;
  }
  streams_.resize(w);
}

void ThresholdBalancer::begin_phase(sim::Engine& engine) {
  const std::uint64_t n = engine.n();
  const PhaseParams& pp = cfg_.params;
  bump_epoch();

  open_phase_ = PhaseStats{};
  open_phase_.phase_index = phase_count_++;
  open_phase_.start_step = engine.step();
  phase_attributed_msgs_ = 0;
  phase_open_ = true;
  levels_run_ = 0;

  // Classification (beginning-of-phase loads). Light-ness is snapshotted so
  // the spread execution keeps the paper's "at the beginning of the phase"
  // semantics even while loads drift.
  heavy_.clear();
  for (std::uint64_t p = 0; p < n; ++p) {
    const std::uint64_t load =
        cfg_.weight_based ? engine.weight_load(p) : engine.load(p);
    if (load >= pp.heavy_threshold) {
      heavy_.push_back(static_cast<std::uint32_t>(p));
    } else if (load <= pp.light_threshold) {
      set_light(static_cast<std::uint32_t>(p));
      ++open_phase_.num_light;
    }
  }
  open_phase_.num_heavy = heavy_.size();
  open_phase_.messages = engine.mutable_messages().protocol_total();
  CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kPhaseBegin, engine.step(), 0, 0,
                  open_phase_.phase_index, open_phase_.num_heavy,
                  open_phase_.num_light);

  nodes_.clear();
  if (heavy_.empty()) return;
  for (const std::uint32_t h : heavy_) engine.note_balance_initiation(h);

  if (cfg_.one_shot_preround) run_preround(engine);
  for (const std::uint32_t h : heavy_) {
    if (!matched(h)) nodes_.push_back(Node{h, h});
  }
}

void ThresholdBalancer::run_preround(sim::Engine& engine) {
  // §4.3 one-shot pre-round: each heavy sends one request to one i.u.a.r.
  // processor; a light processor hit by exactly one request balances
  // immediately. Satisfied heavies skip the tree search.
  const std::uint64_t n = engine.n();
  auto& msg = engine.mutable_messages();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> hits;  // (target, h)
  hits.reserve(heavy_.size());
  for (const std::uint32_t h : heavy_) {
    rng::CounterRng rng(engine.seed(), rng::hash_combine(kPreroundSalt, h),
                        open_phase_.phase_index);
    auto q = static_cast<std::uint32_t>(rng::bounded(rng, n));
    if (q == h) q = (q + 1) % static_cast<std::uint32_t>(n);
    ++msg.control;
    ++phase_attributed_msgs_;
    hits.emplace_back(q, h);
  }
  std::sort(hits.begin(), hits.end());
  for (std::size_t i = 0; i < hits.size();) {
    std::size_t j = i;
    while (j < hits.size() && hits[j].first == hits[i].first) ++j;
    const std::uint32_t q = hits[i].first;
    if (j - i == 1 && light_at_phase_start(q) && !assigned(q)) {
      set_assigned(q);
      ++msg.id_messages;
      ++phase_attributed_msgs_;
      const std::uint32_t h = hits[i].second;
      set_matched(h, q);
      issue_transfer(engine, h, q);
      ++open_phase_.preround_matched;
      CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kPreroundMatch,
                      engine.step(), h, q, open_phase_.phase_index);
    }
    i = j;
  }
}

void ThresholdBalancer::run_levels(sim::Engine& engine, std::uint32_t count) {
  const PhaseParams& pp = cfg_.params;
  auto& msg = engine.mutable_messages();
  const std::uint32_t b = cfg_.game.b;

  auto deliver_id = [&](std::uint32_t root, std::uint32_t partner) {
    ++msg.id_messages;
    ++phase_attributed_msgs_;
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kIdMessage, engine.step(),
                    root, partner, open_phase_.phase_index, levels_run_);
    if (!matched(root)) {
      set_matched(root, partner);
      issue_transfer(engine, root, partner);
    }
  };

  for (std::uint32_t l = 0; l < count && levels_run_ < pp.tree_depth &&
                            !nodes_.empty();
       ++l) {
    const std::uint32_t level = ++levels_run_;
    open_phase_.levels_used = level;
    open_phase_.requests += nodes_.size();
    requesters_.clear();
    for (const Node& node : nodes_) {
      requesters_.push_back(node.proc);
      if (root_req_stamp_[node.root] != epoch_) {
        root_req_stamp_[node.root] = epoch_;
        root_req_count_[node.root] = 0;
      }
      ++root_req_count_[node.root];
    }

    const std::uint64_t game_seed = rng::hash_combine(
        rng::hash_combine(engine.seed(), kGameSalt),
        rng::hash_combine(open_phase_.phase_index, level));
    game_->set_trace_time(engine.step());
    const auto outcome = game_->run(requesters_, game_seed);
    open_phase_.collision_rounds += outcome.rounds_used;
    msg.queries += outcome.query_messages;
    msg.accepts += outcome.accept_messages;
    phase_attributed_msgs_ += outcome.query_messages + outcome.accept_messages;
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kTreeLevel, engine.step(),
                    level, 0, nodes_.size(), outcome.rounds_used,
                    outcome.query_messages + outcome.accept_messages);

    next_nodes_.clear();
    for (std::size_t idx = 0; idx < nodes_.size(); ++idx) {
      const std::uint32_t root = nodes_[idx].root;
      const auto& children = outcome.accepted[idx];
      if (children.size() < b) ++open_phase_.failed_requests;

      bool applicative[2] = {false, false};
      const std::size_t k = std::min<std::size_t>(children.size(), 2);
      for (std::size_t j = 0; j < k; ++j) {
        const std::uint32_t q = children[j];
        if (light_at_phase_start(q) && !assigned(q)) {
          applicative[j] = true;
          set_assigned(q);
          deliver_id(root, q);
        }
      }
      // Sibling rule: children forward the search only when both are
      // non-applicative (checked via the parent: two control messages).
      if (k == 2 && !applicative[0] && !applicative[1]) {
        msg.control += 2;
        phase_attributed_msgs_ += 2;
        if (!cfg_.prune_satisfied || !matched(root)) {
          next_nodes_.push_back(Node{children[0], root});
          next_nodes_.push_back(Node{children[1], root});
        }
      } else if (k == 1 && !applicative[0]) {
        // Degenerate request (fewer than b accepts): the lone child is
        // treated as having a non-applicative sibling.
        if (!cfg_.prune_satisfied || !matched(root)) {
          next_nodes_.push_back(Node{children[0], root});
        }
      }
    }
    nodes_.swap(next_nodes_);
  }
}

void ThresholdBalancer::finalize_phase(sim::Engine& engine) {
  if (!phase_open_) return;
  // Phase boundaries are a cold path: the always-on conservation check costs
  // one O(n) counter scan per phase, nothing per step (the per-step variant
  // in Engine::step_once is debug-only).
  engine.check_conservation();
  for (const std::uint32_t h : heavy_) {
    if (matched(h)) {
      ++open_phase_.matched_heavy;
    } else {
      ++open_phase_.unmatched_heavy;
    }
    // Lemma 7 histogram: collision-game requests charged to this root.
    const std::uint64_t reqs =
        root_req_stamp_[h] == epoch_ ? root_req_count_[h] : 0;
    requests_per_root_hist_.add(reqs);
  }
  open_phase_.messages =
      engine.mutable_messages().protocol_total() - open_phase_.messages;
  // Accounting-drift guard: everything this balancer charged to the phase
  // must equal the global protocol-counter delta over the same window. A
  // mismatch means some call site bumped MessageCounters without phase
  // attribution (or vice versa), which would silently corrupt the §1.2
  // messages-per-phase measurements.
  CLB_DCHECK(open_phase_.messages == phase_attributed_msgs_,
             "per-phase message attribution drifted from global counters");
  CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kPhaseEnd, engine.step(), 0, 0,
                  open_phase_.phase_index, open_phase_.matched_heavy,
                  open_phase_.unmatched_heavy);
  if (cfg_.metrics != nullptr) obs::record_phase(*cfg_.metrics, open_phase_);
  last_phase_ = open_phase_;
  agg_.absorb(open_phase_);
  phase_open_ = false;
}

}  // namespace clb::core
