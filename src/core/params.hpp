// Realisation of the paper's analytical constants on concrete n.
//
// The paper sets T = (log log n)^2 and uses the fractions
//   phase length  T/16,   heavy threshold  T/2,   light threshold  T/16,
//   transfer size T/4,    query-tree depth (1/80) log log n.
// For machine-sized n these are tiny reals, so the implementation keeps the
// fractions as parameters (defaults = paper values) and realises integers
// with documented rounding and floors (DESIGN.md §2). `scale` implements the
// paper's k-/c-scaled thresholds for the Geometric and Multi models.
#pragma once

#include <cstdint>
#include <string>

namespace clb::core {

/// The rational knobs, defaulting to the paper's analytical constants.
struct Fractions {
  double phase = 1.0 / 16.0;     ///< phase length as a fraction of T
  double heavy = 0.5;            ///< heavy threshold as a fraction of T
  double light = 1.0 / 16.0;     ///< light threshold as a fraction of T
  double transfer = 0.25;        ///< transfer amount as a fraction of T
  double depth = 1.0 / 80.0;     ///< tree depth as a fraction of log log n
  double scale = 1.0;            ///< multiplies T (Geometric k / Multi c)
  std::uint64_t t_min = 16;      ///< floor for the realised T
  /// Floor for the realised tree depth. The paper's (1/80) log log n rounds
  /// to 0 at machine sizes; a floor of 3 (15-node trees) realises Lemma 6's
  /// "every heavy finds a light w.h.p." faithfully at bench scale, where
  /// only ~half of the processors are below the realised light threshold.
  std::uint32_t depth_floor = 3;
};

/// Integer-realised per-phase parameters.
struct PhaseParams {
  std::uint64_t n = 0;
  double T_real = 0;              ///< scale * (log2 log2 n)^2 before flooring
  std::uint64_t T = 0;            ///< realised T
  std::uint64_t phase_len = 1;    ///< steps per phase, >= 1
  std::uint64_t heavy_threshold = 0;  ///< load >= this at phase start: heavy
  std::uint64_t light_threshold = 0;  ///< load <= this at phase start: light
  std::uint32_t transfer_amount = 1;  ///< tasks moved per balancing action
  std::uint32_t tree_depth = 1;   ///< query-tree levels per phase

  /// Realises the paper's parameters for `n` processors.
  static PhaseParams from_n(std::uint64_t n, const Fractions& f = {});

  /// One-line human-readable dump for bench headers.
  [[nodiscard]] std::string describe() const;
};

}  // namespace clb::core
