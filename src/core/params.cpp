#include "core/params.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/math.hpp"

namespace clb::core {

PhaseParams PhaseParams::from_n(std::uint64_t n, const Fractions& f) {
  CLB_CHECK(n >= 4, "PhaseParams needs n >= 4");
  CLB_CHECK(f.heavy > f.light, "heavy threshold must exceed light threshold");
  CLB_CHECK(f.transfer > 0 && f.phase > 0 && f.depth > 0 && f.scale > 0,
            "fractions must be positive");
  PhaseParams p;
  p.n = n;
  const double ll = util::log2log2(n);
  p.T_real = f.scale * ll * ll;
  p.T = util::round_at_least(p.T_real, f.t_min);
  const auto t = static_cast<double>(p.T);
  p.phase_len = util::round_at_least(f.phase * t, 1);
  p.heavy_threshold =
      static_cast<std::uint64_t>(std::ceil(f.heavy * t));
  p.light_threshold = util::round_at_least(std::floor(f.light * t), 1);
  // The paper's invariants need light + transfer + own generation within a
  // phase to stay strictly below heavy (see the Remark before the Main
  // Theorem proof); the default fractions give 1/16 + 1/4 + 1/16 = 6/16 < 1/2.
  CLB_CHECK(p.light_threshold < p.heavy_threshold,
            "realised light threshold must be below heavy threshold");
  p.transfer_amount = static_cast<std::uint32_t>(
      util::round_at_least(f.transfer * t, 1));
  p.tree_depth = static_cast<std::uint32_t>(
      util::round_at_least(f.depth * ll, f.depth_floor));
  return p;
}

std::string PhaseParams::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "n=%llu T=%llu (T_real=%.2f) phase_len=%llu heavy>=%llu "
                "light<=%llu transfer=%u depth=%u",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(T), T_real,
                static_cast<unsigned long long>(phase_len),
                static_cast<unsigned long long>(heavy_threshold),
                static_cast<unsigned long long>(light_threshold),
                transfer_amount, tree_depth);
  return buf;
}

}  // namespace clb::core
