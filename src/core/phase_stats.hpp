// Per-phase and aggregate statistics the threshold balancer exposes.
//
// These are exactly the quantities the paper's lemmas bound, so the benches
// read them directly: heavy/light counts (Lemma 4), search success and tree
// depth (Lemmas 5–6), requests per heavy processor (Lemma 7), and message
// counts (§1.2 communication claim).
#pragma once

#include <cstdint>

#include "stats/moments.hpp"

namespace clb::core {

/// Statistics of a single balancing phase.
struct PhaseStats {
  std::uint64_t phase_index = 0;
  std::uint64_t start_step = 0;
  std::uint64_t num_heavy = 0;
  std::uint64_t num_light = 0;
  /// Collision-game requests issued across all levels (tree nodes that
  /// actually searched).
  std::uint64_t requests = 0;
  /// Deepest level at which any request was still searching (0 = no heavy).
  std::uint32_t levels_used = 0;
  /// Heavy processors that received at least one id message.
  std::uint64_t matched_heavy = 0;
  /// Heavy processors left unmatched at phase end (Lemma 6 says ~0 w.h.p.).
  std::uint64_t unmatched_heavy = 0;
  /// Requests that got fewer than b accepts from a collision game.
  std::uint64_t failed_requests = 0;
  /// Query + accept + id messages attributable to this phase.
  std::uint64_t messages = 0;
  /// Collision rounds summed over levels (the paper charges a*c steps each).
  std::uint64_t collision_rounds = 0;
  /// Heavy processors satisfied by the §4.3 one-shot pre-round (when on).
  std::uint64_t preround_matched = 0;
};

/// Aggregates over all phases of a run.
struct AggregateStats {
  stats::OnlineMoments heavy_per_phase;
  stats::OnlineMoments light_per_phase;
  stats::OnlineMoments requests_per_heavy;   // per phase with >= 1 heavy
  stats::OnlineMoments levels_per_phase;     // ditto
  stats::OnlineMoments messages_per_phase;
  stats::OnlineMoments match_rate;           // matched / heavy, per phase
  std::uint64_t phases = 0;
  std::uint64_t phases_with_heavy = 0;
  /// Exact sum of per-phase protocol messages (the oracle cross-checks this
  /// against the engine's global counters; OnlineMoments only keeps means).
  std::uint64_t total_messages = 0;
  std::uint64_t total_unmatched = 0;
  std::uint64_t total_matched = 0;
  std::uint64_t total_preround_matched = 0;
  std::uint64_t total_failed_requests = 0;
  std::uint64_t max_levels_used = 0;

  void absorb(const PhaseStats& p) {
    ++phases;
    total_messages += p.messages;
    total_matched += p.matched_heavy;
    total_preround_matched += p.preround_matched;
    heavy_per_phase.add(static_cast<double>(p.num_heavy));
    light_per_phase.add(static_cast<double>(p.num_light));
    messages_per_phase.add(static_cast<double>(p.messages));
    total_unmatched += p.unmatched_heavy;
    total_failed_requests += p.failed_requests;
    if (p.levels_used > max_levels_used) max_levels_used = p.levels_used;
    if (p.num_heavy > 0) {
      ++phases_with_heavy;
      requests_per_heavy.add(static_cast<double>(p.requests) /
                             static_cast<double>(p.num_heavy));
      levels_per_phase.add(static_cast<double>(p.levels_used));
      match_rate.add(static_cast<double>(p.matched_heavy) /
                     static_cast<double>(p.num_heavy));
    }
  }
};

}  // namespace clb::core
