// Processor liveness: a crash/recovery schedule shared by the serial engine
// and the concurrent runtime.
//
// Crashes are *configuration*, not randomness: the schedule is a pure
// function of the event list, so the engine, the runtime (any worker
// count), and the oracle's shadow all agree on which processors are down
// at which steps and where an orphaned queue is re-homed — the property
// that keeps lockstep bit-identity intact across a crash.
//
// Semantics: a processor crashed at `step` is dead for steps
// [step, step + down_steps). At the *start* of the crash step — before any
// generation or balancing that step — its entire queue is re-homed, in FIFO
// order, onto the nearest alive processor scanning cyclically upward from
// crashed+1. While dead it generates and consumes nothing and balancers
// must neither pick it as a sender nor as a receiver. At step
// step + down_steps it resumes with an empty queue.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace clb::core {

/// One crash event. `down_steps` == 0 events are ignored.
struct CrashEvent {
  std::uint64_t step = 0;
  std::uint32_t proc = 0;
  std::uint64_t down_steps = 1;

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

/// Normalised, validated crash schedule. Construction drops events that
/// cannot be honoured (out-of-range processor, re-crash of an already-dead
/// processor, or a crash that would leave zero alive processors at any
/// covered step); what remains is sorted by (step, proc) and every query is
/// a pure function of it.
class LivenessSchedule {
 public:
  LivenessSchedule() = default;

  LivenessSchedule(std::uint64_t n, std::vector<CrashEvent> events) : n_(n) {
    CLB_CHECK(n_ >= 1, "liveness schedule needs at least one processor");
    std::sort(events.begin(), events.end(),
              [](const CrashEvent& a, const CrashEvent& b) {
                if (a.step != b.step) return a.step < b.step;
                return a.proc < b.proc;
              });
    for (const CrashEvent& ev : events) {
      if (ev.proc >= n_ || ev.down_steps == 0) continue;
      if (ev.down_steps > kMaxDownSteps) continue;
      if (!alive(ev.proc, ev.step)) continue;  // already down: ignore
      bool ok = true;
      for (std::uint64_t s = ev.step; s < ev.step + ev.down_steps; ++s) {
        std::uint64_t down = 1;  // ev itself
        for (const CrashEvent& e : events_) {
          if (s >= e.step && s < e.step + e.down_steps) ++down;
        }
        if (down >= n_) {
          ok = false;
          break;
        }
      }
      if (ok) events_.push_back(ev);
    }
  }

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] const std::vector<CrashEvent>& events() const {
    return events_;
  }

  [[nodiscard]] bool alive(std::uint64_t p, std::uint64_t step) const {
    for (const CrashEvent& ev : events_) {
      if (ev.proc == p && step >= ev.step && step < ev.step + ev.down_steps) {
        return false;
      }
    }
    return true;
  }

  /// True iff at least one accepted event fires exactly at `step`.
  [[nodiscard]] bool crash_step(std::uint64_t step) const {
    for (const CrashEvent& ev : events_) {
      if (ev.step == step) return true;
    }
    return false;
  }

  /// Processors that crash exactly at `step`, ascending.
  [[nodiscard]] std::vector<std::uint32_t> crashes_at(
      std::uint64_t step) const {
    std::vector<std::uint32_t> out;
    for (const CrashEvent& ev : events_) {
      if (ev.step == step) out.push_back(ev.proc);
    }
    return out;  // events_ is (step, proc)-sorted, so this is ascending
  }

  /// Re-home target for a queue orphaned at `step`: the first processor
  /// alive at `step`, scanning cyclically upward from crashed+1.
  /// Construction guarantees one exists.
  [[nodiscard]] std::uint32_t rehome_target(std::uint32_t crashed,
                                            std::uint64_t step) const {
    for (std::uint64_t k = 1; k < n_; ++k) {
      const auto q = static_cast<std::uint32_t>((crashed + k) % n_);
      if (alive(q, step)) return q;
    }
    CLB_CHECK(false, "no alive processor to re-home to");
    return crashed;
  }

 private:
  /// Cap on a single event's outage length; bounds construction cost and is
  /// far beyond any scenario or bench schedule.
  static constexpr std::uint64_t kMaxDownSteps = 1ULL << 16;

  std::uint64_t n_ = 0;
  std::vector<CrashEvent> events_;
};

}  // namespace clb::core
