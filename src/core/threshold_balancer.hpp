// The paper's continuous threshold-triggered balancing algorithm (Figure 2).
//
// Time is divided into phases of `phase_len` steps. At the first step of a
// phase the balancer classifies processors by their current load (heavy:
// load >= T/2, light: load <= T/16), then each heavy processor grows a
// binary query tree to find one light balancing partner:
//
//   * every searching tree node is one request in a collision game
//     (a = 5, b = 2, c = 1), whose b accepted targets become the node's two
//     children (siblings of each other);
//   * an applicative child (light at phase start and not yet reserved this
//     phase) is reserved and sends an id message to the tree's root (boss);
//   * a child forwards the search (requests in the next level's game) iff
//     both it and its sibling are non-applicative — checked via their
//     parent, which costs two control messages;
//   * the root accepts the first id message that reaches it and transfers
//     `transfer_amount` (= T/4) tasks from the back of its queue to the
//     partner.
//
// Execution modes:
//   * kAtomic (default): the whole search runs inside the phase-start step.
//     Classification loads cannot drift during the search, exactly matching
//     the paper's "at the beginning of the phase" semantics; collision
//     rounds and messages are still accounted per phase.
//   * kSpread: tree levels are distributed over the phase's steps
//     (ceil(depth / phase_len) levels per step), realising the concluding
//     remark that the phase structure "is just an analytical instrument".
//     Light-ness is snapshotted at phase start; generation/consumption
//     continue while the search is in flight, and transfers fire at the
//     step the id message arrives.
//
// Transfer modes: by default the whole T/4 block moves at once; with
// `streaming_transfers` the block moves one task per step over the
// following steps ("in a stream-like manner during the next interval",
// Concluding Remarks).
//
// Options reproduce the paper's other variants: `one_shot_preround` is the
// §4.3 adversarial modification (each heavy first sends one request to a
// single random processor; lights hit by exactly one such request balance
// immediately), and `prune_satisfied` stops a tree's growth once its root
// is matched (off by default to match Figure 2 verbatim).
#pragma once

#include <memory>
#include <vector>

#include "collision/collision.hpp"
#include "core/params.hpp"
#include "core/phase_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/balancer.hpp"
#include "stats/histogram.hpp"

namespace clb::core {

enum class PhaseExecution {
  kAtomic,  ///< whole search at the phase-start step (Figure 2 semantics)
  kSpread,  ///< levels spread across the phase's steps (concluding remark)
};

struct ThresholdBalancerConfig {
  PhaseParams params;
  collision::CollisionConfig game{5, 2, 1, 0};
  PhaseExecution execution = PhaseExecution::kAtomic;
  bool one_shot_preround = false;
  bool prune_satisfied = false;
  bool streaming_transfers = false;
  /// Weighted extension ([BMS97] carried to the continuous setting):
  /// classify heavy/light by total task *weight* instead of task count, and
  /// realise the T/4 transfer as the fewest newest tasks whose cumulative
  /// weight reaches `transfer_amount`. Thresholds in `params` are then in
  /// weight units — construct them with Fractions::scale = mean task weight.
  bool weight_based = false;
  /// Optional event-trace sink (borrowed; must outlive the balancer):
  /// phase begin/end, per-level search summaries, id messages, pre-round
  /// matches. Also handed to the embedded collision game for per-round
  /// events.
  obs::TraceSink* trace = nullptr;
  /// Optional metrics registry (borrowed): each finalised phase feeds the
  /// core.phase.* distribution histograms (obs::record_phase).
  obs::MetricsRegistry* metrics = nullptr;
};

class ThresholdBalancer final : public sim::Balancer {
 public:
  explicit ThresholdBalancer(ThresholdBalancerConfig cfg);

  [[nodiscard]] std::string name() const override { return "threshold"; }
  void on_step(sim::Engine& engine) override;
  void on_reset(sim::Engine& engine) override;

  [[nodiscard]] const PhaseParams& params() const { return cfg_.params; }
  /// Statistics of the most recently *finalised* phase.
  [[nodiscard]] const PhaseStats& last_phase() const { return last_phase_; }
  /// True while a begun phase has not been finalised (spread execution can
  /// end a run mid-phase; the oracle's message-attribution cross-check only
  /// applies when this is false).
  [[nodiscard]] bool phase_open() const { return phase_open_; }
  [[nodiscard]] const AggregateStats& aggregate() const { return agg_; }
  /// Distribution of collision-game requests issued per heavy root per
  /// phase (Lemma 7's quantity; each request is the paper's "two balancing
  /// requests").
  [[nodiscard]] const stats::IntHistogram& requests_per_root() const {
    return requests_per_root_hist_;
  }

 private:
  void begin_phase(sim::Engine& engine);
  void run_levels(sim::Engine& engine, std::uint32_t count);
  void finalize_phase(sim::Engine& engine);
  void run_preround(sim::Engine& engine);
  void issue_transfer(sim::Engine& engine, std::uint32_t root,
                      std::uint32_t partner);
  void pump_streams(sim::Engine& engine);
  void ensure_arrays(std::uint64_t n);
  void bump_epoch();

  // Stamped per-processor phase state (no O(n) clears between phases).
  [[nodiscard]] bool assigned(std::uint32_t p) const {
    return assign_stamp_[p] == epoch_;
  }
  void set_assigned(std::uint32_t p) { assign_stamp_[p] = epoch_; }
  [[nodiscard]] bool light_at_phase_start(std::uint32_t p) const {
    return light_stamp_[p] == epoch_;
  }
  void set_light(std::uint32_t p) { light_stamp_[p] = epoch_; }
  [[nodiscard]] bool matched(std::uint32_t root) const {
    return matched_stamp_[root] == epoch_;
  }
  void set_matched(std::uint32_t root, std::uint32_t partner) {
    matched_stamp_[root] = epoch_;
    matched_partner_[root] = partner;
  }

  ThresholdBalancerConfig cfg_;
  std::unique_ptr<collision::CollisionGame> game_;
  PhaseStats last_phase_;
  PhaseStats open_phase_;
  /// Protocol messages this balancer attributed to the open phase; checked
  /// in debug builds against the global-counter delta at finalisation
  /// (guards PhaseStats::messages against accounting drift).
  std::uint64_t phase_attributed_msgs_ = 0;
  bool phase_open_ = false;
  std::uint32_t levels_run_ = 0;
  AggregateStats agg_;
  stats::IntHistogram requests_per_root_hist_;
  std::uint64_t phase_count_ = 0;

  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> assign_stamp_;
  std::vector<std::uint32_t> light_stamp_;
  std::vector<std::uint32_t> matched_stamp_;
  std::vector<std::uint32_t> matched_partner_;
  std::vector<std::uint32_t> root_req_stamp_;
  std::vector<std::uint32_t> root_req_count_;

  // Tree nodes carry their root (boss) explicitly: a processor can appear
  // in several trees across levels, so the boss relation lives on the tree
  // edge, not on the processor.
  struct Node {
    std::uint32_t proc;
    std::uint32_t root;
  };
  std::vector<std::uint32_t> heavy_;
  std::vector<Node> nodes_;
  std::vector<Node> next_nodes_;
  std::vector<std::uint32_t> requesters_;  // proc ids fed to the game

  // Active streaming transfers (streaming_transfers mode).
  struct Stream {
    std::uint32_t from;
    std::uint32_t to;
    std::uint32_t remaining;
  };
  std::vector<Stream> streams_;
};

}  // namespace clb::core
